//! Random-sampling based data compression (§2 of the Data Bubbles paper).
//!
//! The sampling alternative to BIRCH works as follows:
//!
//! 1. Draw a random sample of size `k` from the database to initialize `k`
//!    sufficient statistics `(n, LS, ss)`.
//! 2. In one pass over the original database, classify each object `o` to
//!    the sampled object it is closest to and incrementally add `o` to the
//!    corresponding sufficient statistics (CF additivity).
//!
//! Compared to BIRCH this "has the advantages that we can control exactly
//! the number of representative objects" and needs no threshold parameter.
//! The classification information is retained ([`CompressedSample::assignment`])
//! because the pipelines reuse it in their final expansion step (the paper
//! saves it to a file for the same reason, §8 step 1).
//!
//! # Example
//!
//! ```
//! use db_sampling::compress_by_sampling;
//! use db_spatial::Dataset;
//!
//! let mut ds = Dataset::new(1).unwrap();
//! for i in 0..100 {
//!     ds.push(&[i as f64]).unwrap();
//! }
//! let c = compress_by_sampling(&ds, 10, 42).unwrap();
//! assert_eq!(c.stats.len(), 10);
//! assert_eq!(c.stats.iter().map(|cf| cf.n()).sum::<u64>(), 100);
//! ```

#![warn(missing_docs)]

pub mod bfr;
pub mod incremental;
pub mod parallel;
pub mod squash;

pub use bfr::{bfr_compress, BfrParams, BfrResult};
pub use incremental::IncrementalCompression;
pub use parallel::{
    accumulate_stats_parallel, accumulate_stats_supervised, nn_classify_parallel,
    nn_classify_supervised, NN_KERNEL_MAX_REPS,
};
pub use squash::{squash_compress, SquashResult};

use std::fmt;
use std::num::NonZeroUsize;

use db_birch::Cf;
use db_rng::Rng;
use db_spatial::{id_u32, Dataset};
use db_supervise::{Stop, Supervisor};

/// Errors of the sampling compressor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// `k` was zero.
    ZeroSampleSize,
    /// `k` exceeded the number of points.
    SampleLargerThanData {
        /// Requested sample size.
        k: usize,
        /// Dataset size.
        n: usize,
    },
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::ZeroSampleSize => write!(f, "sample size must be positive"),
            SamplingError::SampleLargerThanData { k, n } => {
                write!(f, "sample size {k} exceeds dataset size {n}")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Why a supervised compression did not produce a result: the arguments
/// were invalid, or the supervisor stopped the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressStop {
    /// Argument validation failed (same conditions as the unsupervised
    /// entry points).
    Sampling(SamplingError),
    /// The run was cancelled, overran its deadline, or a worker panicked.
    Stopped(Stop),
}

impl fmt::Display for CompressStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressStop::Sampling(e) => e.fmt(f),
            CompressStop::Stopped(s) => s.fmt(f),
        }
    }
}

impl std::error::Error for CompressStop {}

impl From<SamplingError> for CompressStop {
    fn from(e: SamplingError) -> Self {
        CompressStop::Sampling(e)
    }
}

impl From<Stop> for CompressStop {
    fn from(s: Stop) -> Self {
        CompressStop::Stopped(s)
    }
}

/// The result of sampling + one-pass NN classification: `k` representative
/// points with their accumulated sufficient statistics, plus the
/// classification of every original object.
#[derive(Debug, Clone)]
pub struct CompressedSample {
    /// Indices (into the original dataset) of the sampled representatives,
    /// ascending.
    pub sample_ids: Vec<usize>,
    /// The sampled points themselves (row `j` = point `sample_ids[j]`).
    pub reps: Dataset,
    /// Per-representative sufficient statistics over the objects classified
    /// to it. `stats[j].n() >= 1` (the representative classifies to itself).
    pub stats: Vec<Cf>,
    /// For every original object, the representative index it was
    /// classified to (`assignment[i] < sample_ids.len()`).
    pub assignment: Vec<u32>,
}

impl CompressedSample {
    /// Number of representatives.
    pub fn k(&self) -> usize {
        self.sample_ids.len()
    }

    /// The objects classified to representative `j`, in original-id order.
    pub fn members_of(&self, j: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a as usize == j).then_some(i))
            .collect()
    }

    /// Groups all object ids by representative: `out[j]` lists the members
    /// of representative `j` in original-id order. One pass, O(n).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignment.iter().enumerate() {
            out[a as usize].push(i);
        }
        out
    }
}

/// Draws a seeded random sample of `k` distinct points and classifies every
/// point of `ds` to its nearest sample point, accumulating sufficient
/// statistics (the paper's steps 1–2 of `OPTICS-SA`).
///
/// Equivalent to [`compress_by_sampling_threaded`] with `threads = None`
/// (available parallelism); the result is bit-for-bit identical for every
/// thread count, so the two entry points are interchangeable.
///
/// # Errors
///
/// Returns an error when `k == 0` or `k > ds.len()`.
pub fn compress_by_sampling(
    ds: &Dataset,
    k: usize,
    seed: u64,
) -> Result<CompressedSample, SamplingError> {
    compress_by_sampling_threaded(ds, k, seed, None)
}

/// [`compress_by_sampling`] with an explicit thread count for the
/// classification and statistics-accumulation passes (`None` = available
/// parallelism). Sampling itself is a sequential seeded draw, so the whole
/// result is deterministic per seed and identical across thread counts.
///
/// # Errors
///
/// Returns an error when `k == 0` or `k > ds.len()`.
pub fn compress_by_sampling_threaded(
    ds: &Dataset,
    k: usize,
    seed: u64,
    threads: Option<NonZeroUsize>,
) -> Result<CompressedSample, SamplingError> {
    match compress_by_sampling_supervised(ds, k, seed, threads, &Supervisor::unlimited()) {
        Ok(c) => Ok(c),
        Err(CompressStop::Sampling(e)) => Err(e),
        // Unreachable without fault injection: an unlimited supervisor with
        // a fresh token never stops cooperatively, and a worker panic
        // should keep panicking callers that did not opt into supervision.
        Err(CompressStop::Stopped(stop)) => panic!("unsupervised compression stopped: {stop}"),
    }
}

/// [`compress_by_sampling_threaded`] under supervision: the classification
/// and accumulation passes consult `sup` on an amortized tick and capture
/// worker panics. On [`CompressStop::Stopped`] no partial result escapes;
/// on `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`CompressStop::Sampling`] when `k == 0` or `k > ds.len()`;
/// [`CompressStop::Stopped`] when the supervisor halted the run.
pub fn compress_by_sampling_supervised(
    ds: &Dataset,
    k: usize,
    seed: u64,
    threads: Option<NonZeroUsize>,
    sup: &Supervisor,
) -> Result<CompressedSample, CompressStop> {
    if k == 0 {
        return Err(SamplingError::ZeroSampleSize.into());
    }
    if k > ds.len() {
        return Err(SamplingError::SampleLargerThanData { k, n: ds.len() }.into());
    }
    let _span = db_obs::span!("sampling.compress");
    let mut rng = Rng::seed_from_u64(seed);
    let mut sample_ids: Vec<usize> = rng.sample_indices(ds.len(), k);
    sample_ids.sort_unstable();
    db_obs::counter!("sampling.reps_sampled").add(k as u64);

    let reps = ds.subset(&sample_ids);
    let mut assignment = nn_classify_supervised(ds, &reps, threads, sup)?;
    let stats = accumulate_stats_supervised(ds, &assignment, k, threads, sup)?;

    // Duplicate objects can put identical points into the sample; every
    // copy then classifies to the lowest-id one, leaving the others'
    // statistics empty. Drop those shadowed representatives so the
    // documented invariant `stats[j].n() >= 1` holds.
    if stats.iter().any(Cf::is_empty) {
        let mut remap = vec![u32::MAX; k];
        let mut kept_ids = Vec::new();
        let mut kept_stats = Vec::new();
        for (j, cf) in stats.into_iter().enumerate() {
            if !cf.is_empty() {
                remap[j] = id_u32(kept_ids.len());
                kept_ids.push(sample_ids[j]);
                kept_stats.push(cf);
            }
        }
        for a in &mut assignment {
            *a = remap[*a as usize];
            debug_assert_ne!(*a, u32::MAX, "object assigned to a dropped representative");
        }
        let reps = ds.subset(&kept_ids);
        return Ok(CompressedSample { sample_ids: kept_ids, reps, stats: kept_stats, assignment });
    }
    Ok(CompressedSample { sample_ids, reps, stats, assignment })
}

/// Classifies every point of `ds` to its nearest point in `reps`
/// (1-NN classification; ties broken by lower representative index).
///
/// Small representative sets (≤ [`parallel::NN_KERNEL_MAX_REPS`], the
/// paper's operating point) go through the batched distance kernel —
/// whole query blocks against the flat representative block, comparing in
/// squared space with zero square roots — larger ones through a spatial
/// index; the two routes are bit-for-bit identical.
///
/// # Panics
///
/// Panics if `reps` is empty or dimensionalities differ.
pub fn nn_classify(ds: &Dataset, reps: &Dataset) -> Vec<u32> {
    assert!(!reps.is_empty(), "cannot classify against an empty representative set");
    assert_eq!(ds.dim(), reps.dim(), "dimensionality mismatch");
    let _span = db_obs::span!("sampling.nn_classify");
    let backend = parallel::ClassifyBackend::new(reps);
    let mut out = vec![0u32; ds.len()];
    match parallel::classify_into(ds, reps, &backend, 0, &mut out, &Supervisor::unlimited()) {
        Ok(()) => {}
        // Unreachable without fault injection: an unlimited supervisor
        // never stops cooperatively.
        Err(stop) => panic!("unsupervised classification stopped: {stop}"),
    }
    db_obs::counter!("sampling.points_classified").add(out.len() as u64);
    out
}

/// Accumulates per-representative sufficient statistics from a
/// classification.
///
/// Single-threaded entry point of [`accumulate_stats_parallel`]; both use
/// the same fixed block layout, so their results are bit-for-bit equal.
///
/// # Panics
///
/// Panics if an assignment is out of range or lengths differ.
pub fn accumulate_stats(ds: &Dataset, assignment: &[u32], k: usize) -> Vec<Cf> {
    accumulate_stats_parallel(ds, assignment, k, NonZeroUsize::new(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Dataset {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[i as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn errors_on_bad_k() {
        let ds = line(10);
        assert_eq!(compress_by_sampling(&ds, 0, 1).unwrap_err(), SamplingError::ZeroSampleSize);
        assert_eq!(
            compress_by_sampling(&ds, 11, 1).unwrap_err(),
            SamplingError::SampleLargerThanData { k: 11, n: 10 }
        );
        assert!(SamplingError::ZeroSampleSize.to_string().contains("positive"));
    }

    #[test]
    fn counts_partition_the_data() {
        let ds = line(200);
        let c = compress_by_sampling(&ds, 17, 42).unwrap();
        assert_eq!(c.k(), 17);
        assert_eq!(c.assignment.len(), 200);
        assert_eq!(c.stats.iter().map(Cf::n).sum::<u64>(), 200);
        assert!(c.stats.iter().all(|cf| cf.n() >= 1));
    }

    #[test]
    fn sample_ids_are_distinct_sorted_and_in_range() {
        let ds = line(100);
        let c = compress_by_sampling(&ds, 30, 7).unwrap();
        assert!(c.sample_ids.windows(2).all(|w| w[0] < w[1]));
        assert!(c.sample_ids.iter().all(|&i| i < 100));
        // reps mirror the sampled points.
        for (j, &i) in c.sample_ids.iter().enumerate() {
            assert_eq!(c.reps.point(j), ds.point(i));
        }
    }

    #[test]
    fn representatives_classify_to_themselves() {
        let ds = line(50);
        let c = compress_by_sampling(&ds, 10, 3).unwrap();
        for (j, &i) in c.sample_ids.iter().enumerate() {
            assert_eq!(c.assignment[i] as usize, j, "rep {j} not classified to itself");
        }
    }

    #[test]
    fn classification_is_truly_nearest() {
        let ds = line(100);
        let c = compress_by_sampling(&ds, 8, 11).unwrap();
        for (i, p) in ds.iter().enumerate() {
            let assigned = c.assignment[i] as usize;
            let d_assigned = db_spatial::euclidean(p, c.reps.point(assigned));
            for j in 0..c.k() {
                let d = db_spatial::euclidean(p, c.reps.point(j));
                assert!(
                    d_assigned <= d + 1e-12,
                    "point {i}: assigned rep {assigned} at {d_assigned}, rep {j} at {d}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn stats_match_members() {
        let ds = line(60);
        let c = compress_by_sampling(&ds, 6, 5).unwrap();
        let members = c.members();
        for j in 0..c.k() {
            assert_eq!(members[j], c.members_of(j));
            assert_eq!(c.stats[j].n() as usize, members[j].len());
            // Centroid of the CF equals the mean of the members.
            let mean: f64 =
                members[j].iter().map(|&i| ds.point(i)[0]).sum::<f64>() / members[j].len() as f64;
            assert!((c.stats[j].centroid()[0] - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = line(100);
        let a = compress_by_sampling(&ds, 10, 9).unwrap();
        let b = compress_by_sampling(&ds, 10, 9).unwrap();
        assert_eq!(a.sample_ids, b.sample_ids);
        assert_eq!(a.assignment, b.assignment);
        let c = compress_by_sampling(&ds, 10, 10).unwrap();
        assert_ne!(a.sample_ids, c.sample_ids);
    }

    #[test]
    fn full_sample_is_identity() {
        let ds = line(20);
        let c = compress_by_sampling(&ds, 20, 1).unwrap();
        assert_eq!(c.sample_ids, (0..20).collect::<Vec<_>>());
        for (i, &a) in c.assignment.iter().enumerate() {
            assert_eq!(a as usize, i);
        }
        assert!(c.stats.iter().all(|cf| cf.n() == 1));
    }

    #[test]
    #[should_panic(expected = "empty representative set")]
    fn classify_empty_reps_panics() {
        let ds = line(5);
        let reps = Dataset::new(1).unwrap();
        nn_classify(&ds, &reps);
    }
}
