//! Parallel nearest-neighbour classification and sufficient-statistics
//! accumulation.
//!
//! The one-pass classification of the whole database against the `k`
//! representatives is the dominant cost of the sampling pipelines (the
//! OPTICS step runs on only `k` objects). Each point's classification is
//! independent, so the pass parallelizes perfectly; results are identical
//! to the sequential [`crate::nn_classify`] bit for bit.
//!
//! # Determinism contract
//!
//! Everything in this module is **bit-for-bit identical across thread
//! counts** (including the sequential fallback for small inputs):
//!
//! * classification writes each point's assignment into its own slot, so
//!   chunking cannot reorder anything;
//! * statistics accumulation partitions the data into *fixed-size blocks*
//!   derived only from the data length (never from the thread count),
//!   reduces each block with Welford updates, and merges the block
//!   partials **in block order** with the stable Chan–Golub–LeVeque merge.
//!   Worker threads only decide *who* computes a block, never the block
//!   boundaries or the merge order.
//!
//! Both paths of every function emit the same spans and counters, so
//! metrics do not depend on which route an input happens to take.

use std::num::NonZeroUsize;

use db_birch::Cf;
use db_spatial::{auto_index, id_u32, kernels, AnyIndex, Dataset, SpatialIndex};
use db_supervise::{catch_shared, fault, first_stop, panic_message, Stop, Supervisor, Ticker};

/// Largest representative set classified through the batched brute-force
/// kernel ([`kernels::nn_block`]) instead of a spatial index. At the
/// paper's operating point (k in the low hundreds) the dense O(n·k) kernel
/// beats index traversal: it streams the flat representative block through
/// cache with zero pointer chasing and zero square roots, while an index
/// query pays tree/bound overhead per point to prune a set this small.
/// Beyond this size the index's asymptotics win. Both backends are
/// bit-for-bit identical (same canonical squared distances, same
/// `(dist, id)` tie-break), pinned by `tests/kernel_equivalence.rs`.
pub const NN_KERNEL_MAX_REPS: usize = 256;

/// Query rows per kernel pass of the batched backend: the query tile and
/// its squared-distance buffer stay stack/L1-resident while the rep block
/// is re-streamed per tile.
const CLASSIFY_BLOCK: usize = 128;

/// How a classification pass finds nearest representatives. Chosen once
/// per pass from the representative count only — never from the thread
/// count — so the route (and its metrics trail) is deterministic.
pub(crate) enum ClassifyBackend {
    /// Batched brute-force over the flat representative block.
    Kernel,
    /// Prebuilt spatial index, for large representative sets.
    Index(AnyIndex),
}

impl ClassifyBackend {
    pub(crate) fn new(reps: &Dataset) -> Self {
        if reps.len() <= NN_KERNEL_MAX_REPS {
            ClassifyBackend::Kernel
        } else {
            ClassifyBackend::Index(auto_index(reps, None))
        }
    }
}

/// Cooperative-check cadence for the classification loop. Each item is a
/// nearest-neighbour query (µs-scale), so consulting the supervisor every
/// 256 items keeps the reaction latency far under the 50ms target while
/// the per-item cost stays one local integer decrement.
const CLASSIFY_TICK: u32 = 256;

/// Check cadence for statistics accumulation, whose per-item work is a
/// single Welford update (ns-scale).
const STATS_TICK: u32 = 1024;

/// Resolves a thread-count knob: `None` means available parallelism, and
/// the result is clamped to `[1, work_items]`.
pub(crate) fn resolve_threads(threads: Option<NonZeroUsize>, work_items: usize) -> usize {
    threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(work_items.max(1))
}

/// Classifies the points `offset..offset + out.len()` of `ds` against the
/// chosen backend, writing into `out`. Shared, uninstrumented core of both
/// the sequential and the parallel classification paths. On `Err` the
/// caller discards `out` wholesale, so partially-written slots never leak.
pub(crate) fn classify_into(
    ds: &Dataset,
    reps: &Dataset,
    backend: &ClassifyBackend,
    offset: usize,
    out: &mut [u32],
    sup: &Supervisor,
) -> Result<(), Stop> {
    let mut ticker = Ticker::new(sup, CLASSIFY_TICK);
    match backend {
        ClassifyBackend::Kernel => {
            let dim = ds.dim();
            let flat = ds.as_flat();
            let reps_flat = reps.as_flat();
            let mut d2 = [0.0f64; CLASSIFY_BLOCK];
            let n = out.len();
            let mut i = 0;
            while i < n {
                let rows = CLASSIFY_BLOCK.min(n - i);
                // One tick per point keeps the supervision cadence (and its
                // fault-injection schedule) identical to the index route.
                for _ in 0..rows {
                    ticker.tick()?;
                }
                let lo = (offset + i) * dim;
                // `nn_block` scans reps in ascending-id order per query, so
                // ids land directly in `out` with the `(dist, id)`
                // tie-break; the chunk offset cannot affect the winners.
                kernels::nn_block(
                    &flat[lo..lo + rows * dim],
                    reps_flat,
                    dim,
                    &mut out[i..i + rows],
                    &mut d2[..rows],
                );
                i += rows;
            }
            db_obs::counter!("spatial.dist_evals").add(n as u64 * reps.len() as u64);
        }
        ClassifyBackend::Index(index) => {
            for (i, slot) in out.iter_mut().enumerate() {
                ticker.tick()?;
                let p = ds.point(offset + i);
                let nn = index.nearest(reps, p).expect("reps non-empty");
                // Lossless: `Dataset` caps its length at
                // `Dataset::MAX_POINTS` (u32 ids), enforced at ingest.
                *slot = id_u32(nn.id);
            }
        }
    }
    Ok(())
}

/// Classifies every point of `ds` to its nearest point in `reps` using
/// `threads` worker threads (`None` = available parallelism). Output is
/// identical to [`crate::nn_classify`] bit for bit; small inputs take a
/// sequential route with the same spans and counters.
///
/// # Panics
///
/// Panics if `reps` is empty or dimensionalities differ.
pub fn nn_classify_parallel(
    ds: &Dataset,
    reps: &Dataset,
    threads: Option<NonZeroUsize>,
) -> Vec<u32> {
    match nn_classify_supervised(ds, reps, threads, &Supervisor::unlimited()) {
        Ok(out) => out,
        // Unreachable without fault injection: a fresh unlimited supervisor
        // never stops cooperatively, and a genuine worker panic should keep
        // panicking callers that did not opt into supervision.
        Err(stop) => panic!("unsupervised classification stopped: {stop}"),
    }
}

/// [`nn_classify_parallel`] under supervision: consults `sup` every
/// [`CLASSIFY_TICK`] points and captures worker panics. On `Err` all
/// partial output is discarded; on `Ok` the result is bit-for-bit the
/// unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled, past the deadline, or a worker panicked.
///
/// # Panics
///
/// Panics if `reps` is empty or dimensionalities differ.
pub fn nn_classify_supervised(
    ds: &Dataset,
    reps: &Dataset,
    threads: Option<NonZeroUsize>,
    sup: &Supervisor,
) -> Result<Vec<u32>, Stop> {
    assert!(!reps.is_empty(), "cannot classify against an empty representative set");
    assert_eq!(ds.dim(), reps.dim(), "dimensionality mismatch");
    let threads = resolve_threads(threads, ds.len());
    // Below this size thread startup dominates; the sequential route is
    // taken *inside* the instrumented region so both paths report alike.
    let threads = if ds.len() < 1024 { 1 } else { threads };

    let mut span = db_obs::span!("sampling.nn_classify");
    db_obs::gauge!("sampling.classify_threads").set(threads as i64);
    let backend = ClassifyBackend::new(reps);
    let mut out = vec![0u32; ds.len()];
    if threads <= 1 {
        classify_into(ds, reps, &backend, 0, &mut out, sup)?;
    } else {
        // Worker time links back into the parent span (it lands in the
        // parent's child-time, not self-time) and workers record under
        // the parent's trace run id. Each body runs under panic capture so
        // one bad block surfaces as `Stop::Panicked`, not a process abort.
        let parent = span.handle();
        let chunk = ds.len().div_ceil(threads);
        let mut results: Vec<Result<(), Stop>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .chunks_mut(chunk)
                .enumerate()
                .map(|(t, slice)| {
                    let backend = &backend;
                    let parent = &parent;
                    scope.spawn(move || {
                        catch_shared(|| {
                            let _s = db_obs::span_linked!("sampling.classify_chunk", parent);
                            fault::inject("classify.worker", sup.token());
                            classify_into(ds, reps, backend, t * chunk, slice, sup)
                        })
                    })
                })
                .collect();
            for handle in handles {
                // `catch_shared` already converted panics, so join only
                // fails on a panic *outside* the capture (e.g. in the span
                // destructor); fold that in rather than unwinding.
                results.push(handle.join().unwrap_or_else(|payload| {
                    Err(Stop::Panicked { message: panic_message(payload.as_ref()) })
                }));
            }
        });
        first_stop(results)?;
    }
    db_obs::counter!("sampling.points_classified").add(out.len() as u64);
    Ok(out)
}

/// Fixed block length for statistics accumulation: independent of the
/// thread count (determinism) and bounded in block *count* so the partial
/// `Vec<Cf>`s stay small even for huge datasets.
pub(crate) fn stats_block_len(n: usize) -> usize {
    n.div_ceil(64).max(4096)
}

/// Accumulates per-representative sufficient statistics from a
/// classification, distributing fixed-size blocks over `threads` workers
/// (`None` = available parallelism) and merging the per-block partial
/// [`Cf`]s in block order with the stable merge. The result is identical
/// for every thread count, including 1.
///
/// # Panics
///
/// Panics if an assignment is out of range or lengths differ.
pub fn accumulate_stats_parallel(
    ds: &Dataset,
    assignment: &[u32],
    k: usize,
    threads: Option<NonZeroUsize>,
) -> Vec<Cf> {
    match accumulate_stats_supervised(ds, assignment, k, threads, &Supervisor::unlimited()) {
        Ok(stats) => stats,
        Err(stop) => panic!("unsupervised accumulation stopped: {stop}"),
    }
}

/// [`accumulate_stats_parallel`] under supervision: consults `sup` every
/// [`STATS_TICK`] points and captures worker panics; per-block partials
/// are discarded wholesale on `Err`, so no partially-merged statistics
/// escape. On `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled, past the deadline, or a worker panicked.
///
/// # Panics
///
/// Panics if an assignment is out of range or lengths differ.
pub fn accumulate_stats_supervised(
    ds: &Dataset,
    assignment: &[u32],
    k: usize,
    threads: Option<NonZeroUsize>,
    sup: &Supervisor,
) -> Result<Vec<Cf>, Stop> {
    assert_eq!(ds.len(), assignment.len(), "assignment length mismatch");
    let mut span = db_obs::span!("sampling.accumulate_stats");
    let block = stats_block_len(ds.len());
    let n_blocks = ds.len().div_ceil(block).max(1);
    let threads = resolve_threads(threads, n_blocks);

    let accumulate_block = |b: usize| -> Result<Vec<Cf>, Stop> {
        let mut ticker = Ticker::new(sup, STATS_TICK);
        let lo = b * block;
        let hi = (lo + block).min(ds.len());
        let mut stats = vec![Cf::empty(ds.dim()); k];
        for i in lo..hi {
            ticker.tick()?;
            stats[assignment[i] as usize].add_point(ds.point(i));
        }
        Ok(stats)
    };

    let mut partials: Vec<Vec<Cf>> = Vec::with_capacity(n_blocks);
    if threads <= 1 {
        for b in 0..n_blocks {
            partials.push(accumulate_block(b)?);
        }
    } else {
        partials.resize(n_blocks, Vec::new());
        // Each block lands in its own pre-assigned slot, so the subsequent
        // in-order merge is independent of the thread schedule. Worker
        // bodies run under panic capture; their outcomes merge via
        // `first_stop` (a captured panic outranks a cooperative stop).
        let parent = span.handle();
        let per_thread = n_blocks.div_ceil(threads);
        let accumulate_block = &accumulate_block;
        let mut results: Vec<Result<(), Stop>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = partials
                .chunks_mut(per_thread)
                .enumerate()
                .map(|(t, slots)| {
                    let parent = &parent;
                    scope.spawn(move || {
                        catch_shared(|| {
                            let _s = db_obs::span_linked!("sampling.accumulate_chunk", parent);
                            fault::inject("stats.worker", sup.token());
                            for (j, slot) in slots.iter_mut().enumerate() {
                                *slot = accumulate_block(t * per_thread + j)?;
                            }
                            Ok(())
                        })
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().unwrap_or_else(|payload| {
                    Err(Stop::Panicked { message: panic_message(payload.as_ref()) })
                }));
            }
        });
        first_stop(results)?;
    }

    // Merge in block order (stable Chan–Golub–LeVeque merge via AddAssign):
    // the fold order is fixed by the block layout, never by the schedule.
    let mut stats = partials
        .into_iter()
        .reduce(|mut acc, part| {
            for (a, p) in acc.iter_mut().zip(part) {
                *a += &p;
            }
            acc
        })
        .unwrap_or_else(|| vec![Cf::empty(ds.dim()); k]);
    if stats.len() < k {
        stats.resize(k, Cf::empty(ds.dim()));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accumulate_stats, nn_classify};

    fn data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n {
            ds.push(&[(i % 173) as f64, ((i * 31) % 97) as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn matches_sequential_exactly() {
        let ds = data(5_000);
        let reps = ds.subset(&(0..50).map(|i| i * 97).collect::<Vec<_>>());
        let seq = nn_classify(&ds, &reps);
        for threads in [1usize, 2, 3, 8] {
            let par = nn_classify_parallel(&ds, &reps, NonZeroUsize::new(threads));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_take_the_sequential_path() {
        let ds = data(100);
        let reps = ds.subset(&[0, 50]);
        let par = nn_classify_parallel(&ds, &reps, NonZeroUsize::new(4));
        assert_eq!(par, nn_classify(&ds, &reps));
    }

    #[test]
    fn default_thread_count_works() {
        let ds = data(3_000);
        let reps = ds.subset(&[0, 1000, 2000]);
        let par = nn_classify_parallel(&ds, &reps, None);
        assert_eq!(par, nn_classify(&ds, &reps));
    }

    #[test]
    #[should_panic(expected = "empty representative set")]
    fn empty_reps_panic() {
        let ds = data(10);
        let reps = Dataset::new(2).unwrap();
        nn_classify_parallel(&ds, &reps, None);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn both_paths_emit_identical_metrics() {
        // The <1024-point sequential fallback must leave the same span and
        // counter trail as the threaded path (satellite bugfix: the
        // fallback used to skip `sampling.nn_classify` instrumentation).
        let reps_small = data(1_200).subset(&[0, 600]);
        let names = |n: usize, t: Option<NonZeroUsize>| {
            db_obs::reset();
            let ds = data(n);
            nn_classify_parallel(&ds, &reps_small, t);
            let snap = db_obs::snapshot();
            assert_eq!(snap.counter("sampling.points_classified"), Some(n as u64));
            assert!(snap.span("sampling.nn_classify").is_some(), "span missing (n = {n})");
            snap
        };
        names(100, NonZeroUsize::new(4)); // sequential fallback
        names(2_000, NonZeroUsize::new(2)); // threaded path
        names(2_000, NonZeroUsize::new(1)); // explicit single thread
    }

    #[test]
    fn accumulation_is_thread_count_invariant() {
        let ds = data(9_000);
        let reps = ds.subset(&(0..40).map(|i| i * 220).collect::<Vec<_>>());
        let assignment = nn_classify(&ds, &reps);
        let base = accumulate_stats_parallel(&ds, &assignment, 40, NonZeroUsize::new(1));
        for threads in [2usize, 3, 7] {
            let other = accumulate_stats_parallel(&ds, &assignment, 40, NonZeroUsize::new(threads));
            assert_eq!(base, other, "threads = {threads}");
        }
        // And the public sequential accessor agrees (it shares the block
        // layout, so equality is exact, not approximate).
        assert_eq!(base, accumulate_stats(&ds, &assignment, 40));
    }

    #[test]
    fn accumulation_totals_are_exact() {
        let ds = data(5_000);
        let reps = ds.subset(&[0, 1111, 3333]);
        let assignment = nn_classify(&ds, &reps);
        let stats = accumulate_stats_parallel(&ds, &assignment, 3, None);
        assert_eq!(stats.iter().map(Cf::n).sum::<u64>(), 5_000);
    }

    #[test]
    fn block_length_is_bounded_and_thread_free() {
        assert_eq!(stats_block_len(100), 4096);
        assert_eq!(stats_block_len(200_000), 4096);
        assert_eq!(stats_block_len(1_000_000), 15_625);
        // Block count never exceeds 64.
        for n in [1usize, 5_000, 262_144, 10_000_000] {
            assert!(n.div_ceil(stats_block_len(n)) <= 64, "n = {n}");
        }
    }
}
