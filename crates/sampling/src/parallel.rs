//! Parallel nearest-neighbour classification.
//!
//! The one-pass classification of the whole database against the `k`
//! representatives is the dominant cost of the sampling pipelines (the
//! OPTICS step runs on only `k` objects). Each point's classification is
//! independent, so the pass parallelizes perfectly; results are identical
//! to the sequential [`crate::nn_classify`] bit for bit.

use std::num::NonZeroUsize;

use db_spatial::{auto_index, Dataset, SpatialIndex};

/// Classifies every point of `ds` to its nearest point in `reps` using
/// `threads` worker threads (`None` = available parallelism). Output is
/// identical to [`crate::nn_classify`].
///
/// # Panics
///
/// Panics if `reps` is empty or dimensionalities differ.
pub fn nn_classify_parallel(
    ds: &Dataset,
    reps: &Dataset,
    threads: Option<NonZeroUsize>,
) -> Vec<u32> {
    assert!(!reps.is_empty(), "cannot classify against an empty representative set");
    assert_eq!(ds.dim(), reps.dim(), "dimensionality mismatch");
    let threads = threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(ds.len().max(1));
    if threads <= 1 || ds.len() < 1024 {
        return crate::nn_classify(ds, reps);
    }

    let _span = db_obs::span!("sampling.nn_classify");
    let index = auto_index(reps, None);
    let mut out = vec![0u32; ds.len()];
    let chunk = ds.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slice) in out.chunks_mut(chunk).enumerate() {
            let index = &index;
            scope.spawn(move || {
                let offset = t * chunk;
                for (i, slot) in slice.iter_mut().enumerate() {
                    let p = ds.point(offset + i);
                    let nn = index.nearest(reps, p).expect("reps non-empty");
                    *slot = nn.id as u32;
                }
            });
        }
    });
    db_obs::counter!("sampling.points_classified").add(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn_classify;

    fn data(n: usize) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..n {
            ds.push(&[(i % 173) as f64, ((i * 31) % 97) as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn matches_sequential_exactly() {
        let ds = data(5_000);
        let reps = ds.subset(&(0..50).map(|i| i * 97).collect::<Vec<_>>());
        let seq = nn_classify(&ds, &reps);
        for threads in [1usize, 2, 3, 8] {
            let par = nn_classify_parallel(&ds, &reps, NonZeroUsize::new(threads));
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_take_the_sequential_path() {
        let ds = data(100);
        let reps = ds.subset(&[0, 50]);
        let par = nn_classify_parallel(&ds, &reps, NonZeroUsize::new(4));
        assert_eq!(par, nn_classify(&ds, &reps));
    }

    #[test]
    fn default_thread_count_works() {
        let ds = data(3_000);
        let reps = ds.subset(&[0, 1000, 2000]);
        let par = nn_classify_parallel(&ds, &reps, None);
        assert_eq!(par, nn_classify(&ds, &reps));
    }

    #[test]
    #[should_panic(expected = "empty representative set")]
    fn empty_reps_panic() {
        let ds = data(10);
        let reps = Dataset::new(2).unwrap();
        nn_classify_parallel(&ds, &reps, None);
    }
}
