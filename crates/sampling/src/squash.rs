//! Grid-based data squashing (reference \[4\] of the Data Bubbles paper,
//! DuMouchel et al., "Squashing Flat Files Flatter", KDD 1999), per the
//! paper's §2 description:
//!
//! > "In a first step, the data is grouped into regions by partitioning
//! > the dimensions of the data. Then, in the second step, a number of
//! > moments are calculated for each region […]. In the third step, they
//! > create for each region a set of squashed data items so that its
//! > moments approximate those of the original data falling in the region.
//! > Obviously, information such as clustering features for the
//! > constructed regions […] can be easily derived from this kind of
//! > squashed data items."
//!
//! We implement exactly that derivation: partition every dimension into
//! `bins_per_dim` equal-width bins over the data's bounding box, compute
//! first- and second-order moments (= the sufficient statistics
//! `(n, LS, ss)`) per occupied region, and return one CF per region.
//! Occupied regions are kept in a hash map, so the exponential number of
//! *potential* regions in high dimensions costs nothing.

use std::collections::HashMap;

use db_birch::Cf;
use db_spatial::{id_u32, Dataset};

/// The result of grid squashing.
#[derive(Debug, Clone)]
pub struct SquashResult {
    /// One CF per occupied grid region.
    pub regions: Vec<Cf>,
    /// For each original point, the index (into `regions`) of its region.
    pub assignment: Vec<u32>,
}

/// Squashes a dataset into per-region sufficient statistics.
///
/// # Panics
///
/// Panics if the dataset is empty or `bins_per_dim == 0`.
pub fn squash_compress(ds: &Dataset, bins_per_dim: usize) -> SquashResult {
    assert!(!ds.is_empty(), "cannot squash an empty dataset");
    assert!(bins_per_dim >= 1, "need at least one bin per dimension");
    assert!(bins_per_dim <= u16::MAX as usize + 1, "bins_per_dim exceeds the 65,536-bin key range");
    let (lo, hi) = ds.bounding_box().expect("non-empty");
    let dim = ds.dim();
    let widths: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| ((h - l) / bins_per_dim as f64).max(f64::MIN_POSITIVE))
        .collect();

    let mut region_of: HashMap<Vec<u16>, u32> = HashMap::new();
    let mut regions: Vec<Cf> = Vec::new();
    let mut assignment = Vec::with_capacity(ds.len());
    let mut key = vec![0u16; dim];
    for p in ds.iter() {
        for ((k, &x), (&l, &w)) in key.iter_mut().zip(p).zip(lo.iter().zip(&widths)) {
            // The upper boundary belongs to the last bin.
            *k = (((x - l) / w) as usize).min(bins_per_dim - 1) as u16;
        }
        let idx = *region_of.entry(key.clone()).or_insert_with(|| {
            regions.push(Cf::empty(dim));
            id_u32(regions.len() - 1)
        });
        regions[idx as usize].add_point(p);
        assignment.push(idx);
    }
    SquashResult { regions, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_data() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                ds.push(&[i as f64, j as f64]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn counts_partition_the_data() {
        let ds = grid_data();
        let r = squash_compress(&ds, 5);
        assert_eq!(r.regions.iter().map(Cf::n).sum::<u64>(), 100);
        assert_eq!(r.assignment.len(), 100);
        // 5x5 regions over a 10x10 grid of points: every region occupied.
        assert_eq!(r.regions.len(), 25);
        assert!(r.regions.iter().all(|cf| cf.n() == 4));
    }

    #[test]
    fn one_bin_collapses_everything() {
        let ds = grid_data();
        let r = squash_compress(&ds, 1);
        assert_eq!(r.regions.len(), 1);
        assert_eq!(r.regions[0].n(), 100);
        let c = r.regions[0].centroid();
        assert!((c[0] - 4.5).abs() < 1e-9 && (c[1] - 4.5).abs() < 1e-9);
    }

    #[test]
    fn moments_match_members() {
        let ds = grid_data();
        let r = squash_compress(&ds, 3);
        // Recompute each region's CF from the assignment and compare.
        let mut manual = vec![Cf::empty(2); r.regions.len()];
        for (i, p) in ds.iter().enumerate() {
            manual[r.assignment[i] as usize].add_point(p);
        }
        for (a, b) in manual.iter().zip(&r.regions) {
            assert_eq!(a.n(), b.n());
            assert_eq!(a.ls(), b.ls());
            assert!((a.ss() - b.ss()).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_points_belong_to_last_bin() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0]]).unwrap();
        let r = squash_compress(&ds, 2);
        // Bins [0,1) and [1,2]; the maximum (2.0) goes to the last bin.
        assert_eq!(r.regions.len(), 2);
        assert_eq!(r.assignment[0], r.assignment[0]);
        assert_ne!(r.assignment[0], r.assignment[2]);
        assert_eq!(r.assignment[1], r.assignment[2]);
    }

    #[test]
    fn identical_points_are_one_region() {
        let mut ds = Dataset::new(3).unwrap();
        for _ in 0..50 {
            ds.push(&[1.0, 2.0, 3.0]).unwrap();
        }
        let r = squash_compress(&ds, 8);
        assert_eq!(r.regions.len(), 1);
        assert_eq!(r.regions[0].n(), 50);
    }

    #[test]
    fn high_dim_sparse_occupation() {
        // 20 points in 8-d: at most 20 occupied regions despite 5^8
        // potential ones.
        let mut ds = Dataset::new(8).unwrap();
        for i in 0..20 {
            let p: Vec<f64> = (0..8).map(|j| ((i * 7 + j * 13) % 29) as f64).collect();
            ds.push(&p).unwrap();
        }
        let r = squash_compress(&ds, 5);
        assert!(r.regions.len() <= 20);
        assert_eq!(r.regions.iter().map(Cf::n).sum::<u64>(), 20);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_panics() {
        squash_compress(&Dataset::new(2).unwrap(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        squash_compress(&grid_data(), 0);
    }
}
