//! `serve` — run the streaming clustering service from the command line.
//!
//! ```text
//! serve [--addr HOST:PORT] [--n N] [--k K] [--dim D] [--seed S]
//!       [--label-cut H] [--eps E] [--min-pts M]
//!       [--max-absorbed N] [--max-mass-fraction F]
//!       [--deadline-ms MS] [--max-seconds SECS]
//! ```
//!
//! Bootstraps a compression from a synthetic blob corpus (`--n` points,
//! `--dim` dimensions, `--k` representatives), then serves ingest and
//! queries until `POST /shutdown` arrives (or `--max-seconds` elapses, as
//! a safety net for scripted runs). The bound address is printed on
//! stdout as `listening on <addr>` so scripts can scrape it.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use db_obsd::{HttpServer, Request, Response};
use db_optics::OpticsParams;
use db_sampling::{compress_by_sampling, IncrementalCompression};
use db_serve::{service_response, BubbleService, ServiceConfig};
use db_supervise::RunBudget;

const USAGE: &str = "usage: serve [--addr HOST:PORT] [--n N] [--k K] [--dim D] [--seed S] \
                     [--label-cut H] [--eps E] [--min-pts M] [--max-absorbed N] \
                     [--max-mass-fraction F] [--deadline-ms MS] [--max-seconds SECS]";

struct Options {
    addr: String,
    n: usize,
    k: usize,
    dim: usize,
    seed: u64,
    label_cut: f64,
    eps: f64,
    min_pts: usize,
    max_absorbed: usize,
    max_mass_fraction: f64,
    deadline_ms: Option<u64>,
    max_seconds: Option<u64>,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".into(),
        n: 5000,
        k: 100,
        dim: 2,
        seed: 2001,
        label_cut: 4.0,
        eps: f64::INFINITY,
        min_pts: 40,
        max_absorbed: 512,
        max_mass_fraction: 0.2,
        deadline_ms: None,
        max_seconds: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--n" => opts.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--dim" => opts.dim = value("--dim")?.parse().map_err(|e| format!("--dim: {e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--label-cut" => {
                opts.label_cut =
                    value("--label-cut")?.parse().map_err(|e| format!("--label-cut: {e}"))?
            }
            "--eps" => opts.eps = value("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?,
            "--min-pts" => {
                opts.min_pts = value("--min-pts")?.parse().map_err(|e| format!("--min-pts: {e}"))?
            }
            "--max-absorbed" => {
                opts.max_absorbed =
                    value("--max-absorbed")?.parse().map_err(|e| format!("--max-absorbed: {e}"))?
            }
            "--max-mass-fraction" => {
                opts.max_mass_fraction = value("--max-mass-fraction")?
                    .parse()
                    .map_err(|e| format!("--max-mass-fraction: {e}"))?
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value("--deadline-ms")?.parse().map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--max-seconds" => {
                opts.max_seconds = Some(
                    value("--max-seconds")?.parse().map_err(|e| format!("--max-seconds: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let params = db_datagen::SeparatedBlobsParams {
        n: opts.n,
        n_clusters: 3,
        dim: opts.dim,
        ..Default::default()
    };
    let data = db_datagen::separated_blobs(&params, opts.seed);
    let compressed = match compress_by_sampling(&data.data, opts.k, opts.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bootstrap compression failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let live = IncrementalCompression::from_sample(&compressed);

    let mut cfg =
        ServiceConfig::new(OpticsParams { eps: opts.eps, min_pts: opts.min_pts }, opts.label_cut);
    cfg.max_absorbed = opts.max_absorbed;
    cfg.max_mass_fraction = opts.max_mass_fraction;
    if let Some(ms) = opts.deadline_ms {
        cfg.budget = RunBudget::with_deadline(Duration::from_millis(ms));
    }

    let service = match BubbleService::new(live, cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("initial recluster failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Compose the service routes with a shutdown endpoint: scripts POST
    // /shutdown for a clean, joined exit instead of SIGKILL.
    let stop = Arc::new(AtomicBool::new(false));
    let handler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        Arc::new(move |req: &Request| {
            if req.method == "POST" && req.path == "/shutdown" {
                stop.store(true, Ordering::Release);
                return Response::ok_text("shutting down\n");
            }
            service_response(&service, req)
        })
    };
    let mut http = match HttpServer::start(&opts.addr, "db-serve", handler) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!("listening on {}", http.addr());
    let started = Instant::now();
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        if let Some(secs) = opts.max_seconds {
            if started.elapsed() >= Duration::from_secs(secs) {
                eprintln!("--max-seconds elapsed; shutting down");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    http.shutdown();
    service.shutdown();
    println!("bye");
    ExitCode::SUCCESS
}
