//! `db-serve`: the streaming clustering service — the paper's warehouse
//! loop turned into a long-lived process.
//!
//! The motivation section of the Data Bubbles paper is explicitly about
//! databases that keep growing: compress once, absorb inserts via CF
//! additivity (Definition 1), and re-run OPTICS on the cheap bubble set
//! whenever a fresh cluster ordering is wanted. [`BubbleService`] is that
//! loop as a service:
//!
//! * it owns a live [`db_sampling::IncrementalCompression`];
//! * batched inserts go through the *fallible* absorb boundary
//!   ([`IncrementalCompression::try_absorb_all`]) — a NaN point is a typed
//!   rejection, never a corrupted representative;
//! * queries are answered from a cached [`Artifact`] (cluster ordering +
//!   bubble dendrogram labels) via one NN lookup, never blocking on a
//!   recluster;
//! * the artifact is recomputed lazily on a background thread when
//!   staleness triggers fire (absorbed-object count, fraction of mass
//!   absorbed since the last build), under a [`RunBudget`] +
//!   [`CancelToken`] from `db-supervise`; a forced recluster cancels the
//!   in-flight one (typed [`PipelineError::Cancelled`], not a panic).
//!
//! [`routes::service_response`] exposes the whole thing over the hardened
//! `db-obsd` HTTP layer (`POST /ingest`, `GET /label`, `GET /ordering`,
//! `GET /stats`, `POST /recluster`), falling back to the telemetry routes
//! (`/metrics`, `/healthz`, `/trace`) for everything else.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod routes;
mod service;

pub use routes::{service_response, ServeServer};
pub use service::{
    Artifact, BubbleService, IngestReceipt, LabelAnswer, ServiceConfig, ServiceStats,
};
