//! HTTP surface of the service, on the hardened `db-obsd` transport.
//!
//! | route             | body                                               |
//! |-------------------|----------------------------------------------------|
//! | `POST /ingest`    | `{"points": [[x, y, …], …]}` → absorb atomically;  |
//! |                   | receipt JSON, or `400`/`422` with the typed error  |
//! | `GET /label`      | `?point=x,y,…` → nearest-representative label from |
//! |                   | the cache                                          |
//! | `GET /ordering`   | the cached cluster ordering (per-representative)   |
//! | `GET /stats`      | live service stats JSON                            |
//! | `POST /recluster` | force a background recluster (cancels in-flight)   |
//! | anything else     | the `db-obsd` telemetry routes (`/metrics`,        |
//! |                   | `/healthz`, `/trace`)                              |

use std::net::SocketAddr;
use std::sync::Arc;

use db_obs::Json;
use db_obsd::{telemetry_response, HttpServer, ObsdError, Request, Response};
use db_optics::OrderingEntry;
use db_spatial::Dataset;

use crate::service::BubbleService;

/// Renders an f64 for a JSON response, mapping non-finite (OPTICS'
/// `UNDEFINED` reachability is `f64::INFINITY`) to `null`.
fn num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

fn error_body(kind: &str, detail: impl std::fmt::Display) -> String {
    Json::Obj(vec![
        ("error".into(), Json::Str(kind.into())),
        ("detail".into(), Json::Str(detail.to_string())),
    ])
    .render()
}

fn handle_ingest(svc: &BubbleService, req: &Request) -> Response {
    let Some(text) = req.body_str() else {
        return Response::json(400, error_body("bad_body", "request body is not UTF-8"));
    };
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Response::json(400, error_body("bad_json", e)),
    };
    let Some(points) = doc.get("points").and_then(Json::as_arr) else {
        return Response::json(400, error_body("bad_request", "missing \"points\" array"));
    };
    let dim = svc.dim();
    let mut batch = match Dataset::new(dim) {
        Ok(ds) => ds,
        Err(e) => return Response::json(500, error_body("internal", e)),
    };
    for (i, row) in points.iter().enumerate() {
        let Some(row) = row.as_arr() else {
            return Response::json(
                400,
                error_body("bad_request", format!("point {i} is not an array")),
            );
        };
        let mut coords = Vec::with_capacity(row.len());
        for (j, c) in row.iter().enumerate() {
            match c.as_f64() {
                // JSON cannot carry NaN/∞, so every parsed number is
                // finite; the absorb boundary re-checks anyway.
                Some(v) => coords.push(v),
                None => {
                    return Response::json(
                        400,
                        error_body(
                            "bad_request",
                            format!("point {i} coordinate {j} is not a number"),
                        ),
                    )
                }
            }
        }
        if let Err(e) = batch.push(&coords) {
            return Response::json(422, error_body("rejected", format!("point {i}: {e}")));
        }
    }
    match svc.ingest(&batch) {
        Ok(receipt) => Response::json(
            200,
            Json::Obj(vec![
                ("accepted".into(), Json::Int(receipt.accepted as i64)),
                ("n_objects".into(), Json::Int(receipt.n_objects as i64)),
                ("stale".into(), Json::Bool(receipt.stale)),
                (
                    "recluster_generation".into(),
                    receipt.recluster_started.map_or(Json::Null, |g| Json::Int(g as i64)),
                ),
            ])
            .render(),
        ),
        // Typed rejection from the absorb boundary; nothing was mutated.
        Err(e) => Response::json(422, error_body("rejected", e)),
    }
}

fn handle_label(svc: &BubbleService, req: &Request) -> Response {
    let Some(raw) = req.query_param("point") else {
        return Response::json(400, error_body("bad_request", "missing ?point=x,y,…"));
    };
    let mut point = Vec::new();
    for part in raw.split(',') {
        match part.trim().parse::<f64>() {
            Ok(v) => point.push(v),
            Err(_) => {
                return Response::json(
                    400,
                    error_body("bad_request", format!("not a number: {part:?}")),
                )
            }
        }
    }
    match svc.label(&point) {
        Ok(answer) => Response::json(
            200,
            Json::Obj(vec![
                ("label".into(), Json::Int(i64::from(answer.label))),
                ("representative".into(), Json::Int(answer.representative as i64)),
                ("distance".into(), num(answer.distance)),
                ("generation".into(), Json::Int(answer.generation as i64)),
            ])
            .render(),
        ),
        Err(e) => Response::json(422, error_body("rejected", e)),
    }
}

fn ordering_entry(e: &OrderingEntry) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Int(e.id as i64)),
        ("reachability".into(), num(e.reachability)),
        ("core_distance".into(), num(e.core_distance)),
        ("weight".into(), Json::Int(e.weight as i64)),
    ])
}

fn handle_ordering(svc: &BubbleService) -> Response {
    let art = svc.artifact();
    Response::json(
        200,
        Json::Obj(vec![
            ("generation".into(), Json::Int(art.generation as i64)),
            ("n_representatives".into(), Json::Int(art.output.n_representatives as i64)),
            (
                "ordering".into(),
                Json::Arr(art.output.rep_ordering.entries.iter().map(ordering_entry).collect()),
            ),
            (
                "rep_labels".into(),
                Json::Arr(art.rep_labels.iter().map(|&l| Json::Int(i64::from(l))).collect()),
            ),
        ])
        .render(),
    )
}

fn handle_stats(svc: &BubbleService) -> Response {
    let s = svc.stats();
    Response::json(
        200,
        Json::Obj(vec![
            ("k".into(), Json::Int(s.k as i64)),
            ("n_objects".into(), Json::Int(s.n_objects as i64)),
            ("total_mass".into(), Json::Int(s.total_mass as i64)),
            ("generation".into(), Json::Int(s.generation as i64)),
            ("absorbed_since_build".into(), Json::Int(s.absorbed_since_build as i64)),
            ("cache_age_s".into(), Json::Num(s.cache_age.as_secs_f64())),
            ("stale".into(), Json::Bool(s.stale)),
            ("recluster_in_flight".into(), Json::Bool(s.recluster_in_flight)),
        ])
        .render(),
    )
}

/// Routes one request against the service, falling back to the telemetry
/// routes. Pure function of `(service, request)` — compose it into a
/// larger handler (the `serve` binary adds `POST /shutdown`) or hand it
/// straight to [`HttpServer::start`] via [`ServeServer`].
pub fn service_response(svc: &BubbleService, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/ingest") => handle_ingest(svc, req),
        ("GET", "/label") => handle_label(svc, req),
        ("GET", "/ordering") => handle_ordering(svc),
        ("GET", "/stats") => handle_stats(svc),
        ("POST", "/recluster") => {
            let generation = svc.force_recluster();
            Response::json(
                202,
                Json::Obj(vec![("recluster_generation".into(), Json::Int(generation as i64))])
                    .render(),
            )
        }
        (_, "/ingest" | "/label" | "/ordering" | "/stats" | "/recluster") => {
            Response::method_not_allowed()
        }
        _ => telemetry_response(req),
    }
}

/// A running service endpoint: [`service_response`] over an
/// [`HttpServer`].
#[derive(Debug)]
pub struct ServeServer {
    http: HttpServer,
    service: Arc<BubbleService>,
}

impl ServeServer {
    /// Binds `addr` and serves `service` in the background.
    ///
    /// # Errors
    ///
    /// [`ObsdError::Bind`] when the address cannot be bound.
    pub fn start(addr: &str, service: Arc<BubbleService>) -> Result<ServeServer, ObsdError> {
        let svc = Arc::clone(&service);
        let http = HttpServer::start(
            addr,
            "db-serve",
            Arc::new(move |req: &Request| service_response(&svc, req)),
        )?;
        Ok(ServeServer { http, service })
    }

    /// The address actually bound.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The service behind the endpoint.
    pub fn service(&self) -> &Arc<BubbleService> {
        &self.service
    }

    /// Stops the HTTP listener, then the service's background recluster.
    pub fn shutdown(&mut self) {
        self.http.shutdown();
        self.service.shutdown();
    }
}
