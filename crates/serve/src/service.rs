//! The service core: live compression, cached artifact, background
//! reclustering under supervision.

use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use data_bubbles::pipeline::{
    recluster_supervised, Compressor, PipelineConfig, PipelineError, PipelineOutput, Recovery,
};
use data_bubbles::{try_bubble_dendrogram, BubbleSpace, DataBubble, DEFAULT_MAX_MATRIX_K};
use db_hierarchical::Linkage;
use db_optics::OpticsParams;
use db_sampling::IncrementalCompression;
use db_spatial::{auto_index, AnyIndex, Dataset, SpatialError, SpatialIndex};
use db_supervise::{CancelToken, RunBudget};

/// Locks a mutex, recovering from poisoning: every protected value here
/// is either replaced whole (the cache `Arc`) or validated before use, so
/// a panicking writer cannot leave it half-updated in a way readers care
/// about.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of a [`BubbleService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// OPTICS parameters for the recluster (see
    /// [`PipelineConfig::optics`]).
    pub optics: OpticsParams,
    /// Recovery method of the recluster ([`Recovery::Bubbles`] by
    /// default).
    pub recovery: Recovery,
    /// Linkage of the bubble dendrogram behind `GET /label`.
    pub linkage: Linkage,
    /// Height at which the bubble dendrogram is cut into the
    /// per-representative labels served by `GET /label`.
    pub label_cut: f64,
    /// Staleness trigger: rebuild once this many objects were absorbed
    /// since the cached artifact was built.
    pub max_absorbed: usize,
    /// Staleness trigger: rebuild once the mass absorbed since the cached
    /// artifact was built exceeds this fraction of the mass it was built
    /// from (`0.2` = a fifth of the database is new).
    pub max_mass_fraction: f64,
    /// Resource envelope of every recluster (deadline ⇒ the degradation
    /// ladder of [`recluster_supervised`] kicks in).
    pub budget: RunBudget,
    /// Worker threads for the recluster hot paths (`None` = available
    /// parallelism; the output is thread-count invariant).
    pub threads: Option<NonZeroUsize>,
    /// Distance-matrix cap for the recluster (see
    /// [`PipelineConfig::matrix_max_k`]).
    pub matrix_max_k: usize,
}

impl ServiceConfig {
    /// A configuration with the default execution knobs and staleness
    /// triggers (rebuild after 512 absorbed objects or 20% new mass).
    pub fn new(optics: OpticsParams, label_cut: f64) -> Self {
        Self {
            optics,
            recovery: Recovery::Bubbles,
            linkage: Linkage::Single,
            label_cut,
            max_absorbed: 512,
            max_mass_fraction: 0.2,
            budget: RunBudget::unlimited(),
            threads: None,
            matrix_max_k: DEFAULT_MAX_MATRIX_K,
        }
    }

    /// The [`PipelineConfig`] a recluster of `inc` runs under. `k` and
    /// the compressor are placeholders — [`recluster_supervised`] ignores
    /// both (the compression fixes them).
    fn pipeline_config(&self, inc: &IncrementalCompression) -> PipelineConfig {
        let mut cfg = PipelineConfig::new(
            inc.k(),
            Compressor::Sample { seed: 0 },
            self.recovery,
            self.optics,
        );
        cfg.threads = self.threads;
        cfg.matrix_max_k = self.matrix_max_k;
        cfg.budget = self.budget;
        cfg
    }
}

/// One immutable build of the service's query state: everything a query
/// needs, snapshotted together so answers are internally consistent even
/// while newer data streams in.
#[derive(Debug)]
pub struct Artifact {
    /// Monotonic build number (0 = the synchronous build at startup).
    pub generation: u64,
    /// The recluster output: ordering over the representatives plus the
    /// expanded ordering (for the non-naive recoveries).
    pub output: PipelineOutput,
    /// Per-representative cluster label from cutting the bubble
    /// dendrogram at [`ServiceConfig::label_cut`].
    pub rep_labels: Vec<i32>,
    /// Objects the compression had absorbed when this was built.
    pub n_objects: usize,
    /// Total CF mass when this was built.
    pub total_mass: u64,
    /// When this artifact was installed.
    pub built_at: Instant,
    reps: Dataset,
    index: AnyIndex,
}

impl Artifact {
    /// Labels `point` with one NN lookup against this artifact's
    /// representatives: the label of the nearest representative under the
    /// bubble-dendrogram cut.
    ///
    /// # Errors
    ///
    /// [`SpatialError::DimensionMismatch`] / [`SpatialError::NonFiniteCoordinate`]
    /// for invalid query points — the same ingest-boundary checks as
    /// absorption, because an NN query with a NaN coordinate is
    /// meaningless, not "closest to everything".
    pub fn label_of(&self, point: &[f64]) -> Result<LabelAnswer, SpatialError> {
        if point.len() != self.reps.dim() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.reps.dim(),
                got: point.len(),
            });
        }
        if let Some(coord) = point.iter().position(|x| !x.is_finite()) {
            return Err(SpatialError::NonFiniteCoordinate { point: 0, coord });
        }
        let nn = self
            .index
            .nearest(&self.reps, point)
            .ok_or(SpatialError::DimensionMismatch { expected: self.reps.dim(), got: 0 })?;
        Ok(LabelAnswer {
            label: self.rep_labels[nn.id],
            representative: nn.id,
            distance: nn.dist,
            generation: self.generation,
        })
    }

    /// The representatives this artifact answers from.
    pub fn representatives(&self) -> &Dataset {
        &self.reps
    }
}

/// Answer to a label query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelAnswer {
    /// Cluster label of the nearest representative.
    pub label: i32,
    /// Id of the nearest representative.
    pub representative: usize,
    /// Distance to it.
    pub distance: f64,
    /// Generation of the artifact that answered.
    pub generation: u64,
}

/// Receipt of one accepted ingest batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Points absorbed (the whole batch — absorption is atomic).
    pub accepted: usize,
    /// Objects in the compression after the batch.
    pub n_objects: usize,
    /// Whether the cache was stale after this batch.
    pub stale: bool,
    /// Generation of the background recluster this batch started, if any.
    pub recluster_started: Option<u64>,
}

/// A point-in-time view of the service, for `GET /stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Number of representatives (fixed for the service's lifetime).
    pub k: usize,
    /// Objects absorbed so far.
    pub n_objects: usize,
    /// Total CF mass.
    pub total_mass: u64,
    /// Generation of the cached artifact.
    pub generation: u64,
    /// Objects absorbed since the cached artifact was built.
    pub absorbed_since_build: usize,
    /// Age of the cached artifact.
    pub cache_age: Duration,
    /// Whether the staleness triggers currently fire.
    pub stale: bool,
    /// Whether a background recluster is in flight.
    pub recluster_in_flight: bool,
}

/// Builds an [`Artifact`] (generation filled in by the caller) from a
/// compression snapshot: supervised recluster + bubble-dendrogram labels.
fn build_artifact(
    snapshot: &IncrementalCompression,
    cfg: &ServiceConfig,
    cancel: Option<CancelToken>,
) -> Result<Artifact, PipelineError> {
    let mut pcfg = cfg.pipeline_config(snapshot);
    pcfg.cancel = cancel;
    let output = recluster_supervised(snapshot, &pcfg)?;
    let bubbles: Vec<DataBubble> =
        snapshot.stats().iter().map(DataBubble::try_from_cf).collect::<Result<_, _>>()?;
    let space = BubbleSpace::try_new(bubbles)?;
    let dendrogram = try_bubble_dendrogram(&space, cfg.linkage)?;
    let rep_labels = dendrogram.cut_at_distance(cfg.label_cut);
    let reps = snapshot.representatives().clone();
    let index = auto_index(&reps, None);
    Ok(Artifact {
        generation: 0,
        output,
        rep_labels,
        n_objects: snapshot.n_objects(),
        total_mass: snapshot.total_mass(),
        built_at: Instant::now(),
        reps,
        index,
    })
}

/// State of the background recluster machinery. One worker at most;
/// starting a forced recluster cancels the in-flight one.
#[derive(Debug, Default)]
struct ReclusterSlot {
    /// Next generation number to hand out (generation 0 is the startup
    /// build).
    next_generation: u64,
    /// Cancel token of the in-flight recluster, if any.
    cancel: Option<CancelToken>,
    /// Handle of the most recently started worker.
    worker: Option<JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    cfg: ServiceConfig,
    live: Mutex<IncrementalCompression>,
    cache: Mutex<Arc<Artifact>>,
    recluster: Mutex<ReclusterSlot>,
}

/// The streaming clustering service. Cheap to share: wrap it in an
/// [`Arc`] and hand clones to the HTTP handler and to tests.
#[derive(Debug)]
pub struct BubbleService {
    shared: Arc<Shared>,
}

impl BubbleService {
    /// Starts a service over `initial`, building the generation-0
    /// artifact synchronously (queries are answerable from the first
    /// instant).
    ///
    /// # Errors
    ///
    /// Any [`PipelineError`] of the initial recluster.
    pub fn new(initial: IncrementalCompression, cfg: ServiceConfig) -> Result<Self, PipelineError> {
        let artifact = build_artifact(&initial, &cfg, None)?;
        let shared = Arc::new(Shared {
            cfg,
            live: Mutex::new(initial),
            cache: Mutex::new(Arc::new(artifact)),
            recluster: Mutex::new(ReclusterSlot { next_generation: 1, cancel: None, worker: None }),
        });
        Ok(BubbleService { shared })
    }

    /// Dimensionality of the points this service ingests and labels.
    pub fn dim(&self) -> usize {
        self.artifact().reps.dim()
    }

    /// The current cached artifact. Queries hold the cache lock only long
    /// enough to clone the [`Arc`] — never across a recluster.
    pub fn artifact(&self) -> Arc<Artifact> {
        Arc::clone(&lock(&self.shared.cache))
    }

    /// A clone of the live compression — for differential tests and
    /// offline tooling (the clone is a consistent snapshot).
    pub fn compression(&self) -> IncrementalCompression {
        lock(&self.shared.live).clone()
    }

    /// Absorbs a batch atomically through the fallible ingest boundary,
    /// then starts a background recluster if the staleness triggers fire
    /// and none is in flight.
    ///
    /// # Errors
    ///
    /// The typed [`SpatialError`] of
    /// [`IncrementalCompression::try_absorb_all`]; on `Err` nothing was
    /// absorbed and the cache is untouched.
    pub fn ingest(&self, batch: &Dataset) -> Result<IngestReceipt, SpatialError> {
        let _span = db_obs::span!("serve.ingest");
        db_obs::histogram!("serve.ingest.batch_points").record(batch.len() as f64);
        let (n_objects, total_mass) = {
            let mut live = lock(&self.shared.live);
            live.try_absorb_all(batch)?;
            (live.n_objects(), live.total_mass())
        };
        db_obs::counter!("serve.ingest.points").add(batch.len() as u64);
        db_obs::counter!("serve.ingest.batches").incr();
        let stale = {
            let art = self.artifact();
            self.is_stale(&art, n_objects, total_mass)
        };
        let recluster_started = if stale { self.spawn_recluster(false) } else { None };
        Ok(IngestReceipt { accepted: batch.len(), n_objects, stale, recluster_started })
    }

    fn is_stale(&self, art: &Artifact, n_objects: usize, total_mass: u64) -> bool {
        let absorbed = n_objects.saturating_sub(art.n_objects);
        if absorbed >= self.shared.cfg.max_absorbed {
            return true;
        }
        let new_mass = total_mass.saturating_sub(art.total_mass) as f64;
        art.total_mass > 0 && new_mass / art.total_mass as f64 >= self.shared.cfg.max_mass_fraction
    }

    /// Labels a point from the cache (one NN lookup; never blocks on a
    /// recluster).
    ///
    /// # Errors
    ///
    /// As [`Artifact::label_of`].
    pub fn label(&self, point: &[f64]) -> Result<LabelAnswer, SpatialError> {
        db_obs::counter!("serve.queries").incr();
        self.artifact().label_of(point)
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        let (n_objects, total_mass, k) = {
            let live = lock(&self.shared.live);
            (live.n_objects(), live.total_mass(), live.k())
        };
        let art = self.artifact();
        let in_flight = {
            let slot = lock(&self.shared.recluster);
            slot.worker.as_ref().is_some_and(|w| !w.is_finished())
        };
        db_obs::gauge!("serve.cache.age_ms").set(art.built_at.elapsed().as_millis() as i64);
        ServiceStats {
            k,
            n_objects,
            total_mass,
            generation: art.generation,
            absorbed_since_build: n_objects.saturating_sub(art.n_objects),
            cache_age: art.built_at.elapsed(),
            stale: self.is_stale(&art, n_objects, total_mass),
            recluster_in_flight: in_flight,
        }
    }

    /// Forces a background recluster now, cancelling any in-flight one
    /// (the cancelled run surfaces as typed [`PipelineError::Cancelled`]
    /// inside its worker and is counted under
    /// `serve.recluster.cancelled`). Returns the new run's generation.
    pub fn force_recluster(&self) -> u64 {
        // `spawn_recluster(true)` always starts a run.
        self.spawn_recluster(true).unwrap_or(0)
    }

    /// Starts a background recluster from a snapshot of the live
    /// compression. `forced` cancels an in-flight run first; unforced
    /// (staleness-triggered) calls are skipped while one is in flight —
    /// cancelling progress on every ingest batch would mean a recluster
    /// never completes under sustained load.
    fn spawn_recluster(&self, forced: bool) -> Option<u64> {
        let mut slot = lock(&self.shared.recluster);
        let in_flight = slot.worker.as_ref().is_some_and(|w| !w.is_finished());
        if in_flight {
            if !forced {
                return None;
            }
            if let Some(c) = slot.cancel.take() {
                c.cancel();
                db_obs::counter!("serve.recluster.cancelled_requests").incr();
            }
        }
        let generation = slot.next_generation;
        slot.next_generation += 1;
        let token = CancelToken::new();
        slot.cancel = Some(token.clone());
        let snapshot = lock(&self.shared.live).clone();
        let shared = Arc::clone(&self.shared);
        let worker = std::thread::Builder::new()
            .name(format!("serve-recluster-{generation}"))
            .spawn(move || recluster_worker(&shared, snapshot, generation, token))
            .ok()?;
        // The previous worker (if any) was cancelled above and exits at
        // its next cooperative check; it only touches Arcs, so detaching
        // its handle is safe.
        slot.worker = Some(worker);
        db_obs::counter!("serve.recluster.started").incr();
        Some(generation)
    }

    /// Blocks until the cached artifact reaches `min_generation` or
    /// `timeout` elapses; returns whether it did. Test/tooling helper —
    /// queries themselves never wait.
    pub fn wait_for_generation(&self, min_generation: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.artifact().generation >= min_generation {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Cancels any in-flight recluster and joins its worker. Idempotent.
    pub fn shutdown(&self) {
        let worker = {
            let mut slot = lock(&self.shared.recluster);
            if let Some(c) = slot.cancel.take() {
                c.cancel();
            }
            slot.worker.take()
        };
        if let Some(w) = worker {
            let _ = w.join();
        }
    }
}

impl Drop for BubbleService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn recluster_worker(
    shared: &Arc<Shared>,
    snapshot: IncrementalCompression,
    generation: u64,
    token: CancelToken,
) {
    let _span = db_obs::span!("serve.recluster");
    let started = Instant::now();
    match build_artifact(&snapshot, &shared.cfg, Some(token)) {
        Ok(mut artifact) => {
            artifact.generation = generation;
            db_obs::histogram!("serve.recluster.latency_ms", [1.0, 10.0, 100.0, 1000.0, 10000.0])
                .record(started.elapsed().as_secs_f64() * 1e3);
            let mut cache = lock(&shared.cache);
            if cache.generation < generation {
                *cache = Arc::new(artifact);
                db_obs::counter!("serve.recluster.completed").incr();
                db_obs::trace_instant!("serve.recluster.installed", "generation", generation);
            } else {
                // A forced newer run finished first; its artifact is
                // fresher than ours.
                db_obs::counter!("serve.recluster.superseded").incr();
            }
        }
        Err(PipelineError::Cancelled { .. }) => {
            // Superseded by a newer request — typed, expected, and not a
            // health event (the newer run owns the health slot).
            db_obs::counter!("serve.recluster.cancelled").incr();
        }
        Err(e) => {
            // `recluster_supervised` already reported health; keep the
            // previous artifact serving.
            db_obs::counter!("serve.recluster.failed").incr();
            db_obs::log_warn!("background recluster generation {generation} failed: {e}");
        }
    }
}
