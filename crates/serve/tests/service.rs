//! End-to-end tests of the streaming service: ingest determinism across
//! batch splits, query liveness during reclusters, typed cancellation of
//! superseded reclusters, and the HTTP validation boundary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use db_optics::OpticsParams;
use db_sampling::{compress_by_sampling, IncrementalCompression};
use db_serve::{BubbleService, ServeServer, ServiceConfig};
use db_spatial::Dataset;
use db_supervise::fault;

/// The fault spec is process-global; tests that install one serialize
/// here (and on the health registry, which reclusters also touch).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn blobs(n: usize, seed: u64) -> Dataset {
    let params = db_datagen::SeparatedBlobsParams { n, ..Default::default() };
    db_datagen::separated_blobs(&params, seed).data
}

fn service(seed: u64) -> BubbleService {
    let base = blobs(400, seed);
    let compressed = compress_by_sampling(&base, 24, seed).expect("compress");
    let live = IncrementalCompression::from_sample(&compressed);
    let cfg = ServiceConfig::new(OpticsParams { eps: f64::INFINITY, min_pts: 20 }, 4.0);
    BubbleService::new(live, cfg).expect("service")
}

fn request(addr: std::net::SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    let status: u16 =
        out.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            panic!("unparseable response: {out:?}");
        });
    let body = out.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!("POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
    )
}

fn ingest_body(points: &[&[f64]]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let coords: Vec<String> = p.iter().map(|c| format!("{c:?}")).collect();
            format!("[{}]", coords.join(","))
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

/// Absorbing the same stream through `POST /ingest` in different batch
/// splits must leave bit-identical stats and assignment — and identical
/// to absorbing the stream directly, without HTTP in the way.
#[test]
fn http_ingest_is_bit_identical_across_batch_splits() {
    let stream_points = blobs(90, 7);

    // Reference: direct, one atomic absorb_all.
    let reference = {
        let svc = service(42);
        let mut inc = svc.compression();
        inc.try_absorb_all(&stream_points).expect("absorb");
        inc
    };

    for batch_size in [90, 7, 1] {
        let svc = Arc::new(service(42));
        let mut server = ServeServer::start("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
        let addr = server.addr();
        let rows: Vec<&[f64]> = stream_points.iter().collect();
        for chunk in rows.chunks(batch_size) {
            let (status, body) = post(addr, "/ingest", &ingest_body(chunk));
            assert_eq!(status, 200, "batch_size={batch_size}: {body}");
        }
        let inc = svc.compression();
        assert_eq!(inc.assignment(), reference.assignment(), "batch_size={batch_size}");
        assert_eq!(inc.stats(), reference.stats(), "batch_size={batch_size}");
        assert_eq!(inc.n_objects(), reference.n_objects());
        server.shutdown();
    }
}

/// While a recluster is in flight (made slow by an injected fault), label
/// and stats queries answer promptly from the previous artifact.
#[test]
fn queries_answer_from_cache_while_recluster_is_in_flight() {
    let _g = fault_guard();
    let svc = Arc::new(service(13));
    let before = svc.artifact().generation;

    fault::set_spec(Some("clustering:delay:600"));
    let forced_gen = svc.force_recluster();
    assert!(forced_gen > before);

    // The worker is sleeping inside its clustering phase; the cache must
    // keep answering immediately.
    let t0 = Instant::now();
    let answer = svc.label(&[0.5, 0.5]).expect("label");
    let elapsed = t0.elapsed();
    assert_eq!(answer.generation, before, "query must come from the old artifact");
    assert!(
        elapsed < Duration::from_millis(300),
        "label query blocked on the recluster ({elapsed:?})"
    );
    let stats = svc.stats();
    assert_eq!(stats.generation, before);

    // And the recluster still completes and installs.
    assert!(svc.wait_for_generation(forced_gen, Duration::from_secs(20)));
    fault::set_spec(None);
    svc.shutdown();
}

/// A newer forced recluster cancels the in-flight one: the superseded run
/// surfaces as a typed cancellation inside its worker (no panic, counted,
/// previous artifact untouched until the newer run installs).
#[test]
fn forced_recluster_cancels_the_inflight_one() {
    let _g = fault_guard();
    let svc = Arc::new(service(99));

    fault::set_spec(Some("clustering:delay:400"));
    let first = svc.force_recluster();
    let second = svc.force_recluster();
    fault::set_spec(None);
    assert!(second > first);

    assert!(svc.wait_for_generation(second, Duration::from_secs(20)));
    let art = svc.artifact();
    assert_eq!(art.generation, second, "the newer recluster owns the cache");
    // The service stayed healthy throughout: a cancelled recluster is a
    // caller decision, not a failure.
    assert_ne!(db_obs::health::current().status, db_obs::health::Status::Failing);
    svc.shutdown();
}

/// Staleness triggers fire from ingest volume and start a background
/// recluster; the receipt reports it and the artifact advances.
#[test]
fn staleness_triggers_start_a_background_recluster() {
    let base = blobs(400, 3);
    let compressed = compress_by_sampling(&base, 24, 3).expect("compress");
    let live = IncrementalCompression::from_sample(&compressed);
    let mut cfg = ServiceConfig::new(OpticsParams { eps: f64::INFINITY, min_pts: 20 }, 4.0);
    cfg.max_absorbed = 50; // small trigger
    let svc = BubbleService::new(live, cfg).expect("service");

    let receipt = svc.ingest(&blobs(60, 5)).expect("ingest");
    assert!(receipt.stale, "60 absorbed ≥ trigger of 50");
    let gen = receipt.recluster_started.expect("a recluster starts on staleness");
    assert!(svc.wait_for_generation(gen, Duration::from_secs(20)));
    let art = svc.artifact();
    assert_eq!(art.n_objects, svc.compression().n_objects());
    svc.shutdown();
}

#[test]
fn http_validation_boundary() {
    let svc = Arc::new(service(21));
    let mut server = ServeServer::start("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
    let addr = server.addr();
    let n_before = svc.compression().n_objects();

    // Malformed JSON → 400.
    let (status, body) = post(addr, "/ingest", "{\"points\": [[1.0, ");
    assert_eq!(status, 400, "{body}");
    // Missing key → 400.
    let (status, _) = post(addr, "/ingest", "{\"rows\": []}");
    assert_eq!(status, 400);
    // Wrong dimensionality → 422 typed, nothing absorbed.
    let (status, body) = post(addr, "/ingest", "{\"points\": [[1.0, 2.0, 3.0]]}");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("rejected"), "{body}");
    // Non-numeric coordinate → 400.
    let (status, _) = post(addr, "/ingest", "{\"points\": [[1.0, \"x\"]]}");
    assert_eq!(status, 400);
    assert_eq!(svc.compression().n_objects(), n_before, "rejections must not absorb");

    // Label: missing param → 400; NaN coordinate → 422 typed.
    let (status, _) = get(addr, "/label");
    assert_eq!(status, 400);
    let (status, body) = get(addr, "/label?point=NaN,0.0");
    assert_eq!(status, 422, "{body}");
    // Valid label query → 200 with a label.
    let (status, body) = get(addr, "/label?point=0.5,0.5");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"label\""), "{body}");

    // Ordering and stats are served.
    let (status, body) = get(addr, "/ordering");
    assert_eq!(status, 200);
    assert!(body.contains("\"ordering\""), "{body}");
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"n_objects\""), "{body}");

    // Wrong method on a service route → 405.
    let (status, _) = get(addr, "/ingest");
    assert_eq!(status, 405);
    let (status, _) = post(addr, "/label", "{}");
    assert_eq!(status, 405);

    // Telemetry fallback still works, and unknown routes 404.
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("serve_ingest") || body.is_empty() || body.contains("# TYPE"));
    let (status, _) = get(addr, "/nope");
    assert_eq!(status, 404);

    server.shutdown();
}
