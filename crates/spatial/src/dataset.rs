use crate::error::SpatialError;

/// A dense, row-major collection of `d`-dimensional points.
///
/// Storage is a single flat `Vec<f64>`, point `i` occupying
/// `data[i*dim .. (i+1)*dim]`. This layout keeps range scans and distance
/// computations cache friendly and avoids one allocation per point.
///
/// Every fallible constructor and [`Dataset::push`] validate that
/// coordinates are finite, so a `Dataset` built through the safe API never
/// contains NaN or ±∞ — the distance kernels and everything above them can
/// rely on it. [`Dataset::from_flat_unchecked`] is the only way to bypass
/// the check (fault injection, pre-validated buffers).
///
/// The ingest boundary also caps the point count at
/// [`Dataset::MAX_POINTS`]: object ids travel through the pipelines as
/// `u32` (classification assignments, grid cell membership, expanded
/// cluster orderings), so every constructor rejects datasets whose ids
/// would overflow that range. Code holding a `Dataset` may therefore cast
/// any valid point index to `u32` without truncation.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f64>,
}

impl Dataset {
    /// Maximum number of points a dataset may hold.
    ///
    /// Equal to `u32::MAX` (not `u32::MAX + 1`): valid ids then occupy
    /// `0..u32::MAX`, leaving `u32::MAX` itself free as a sentinel (the
    /// sampling compressor uses it to mark dropped representatives).
    pub const MAX_POINTS: usize = u32::MAX as usize;

    /// Checks that a prospective point count fits the `u32` id invariant.
    fn check_len(len: usize) -> Result<(), SpatialError> {
        if len > Self::MAX_POINTS {
            return Err(SpatialError::TooManyPoints { len, max: Self::MAX_POINTS });
        }
        Ok(())
    }

    /// Creates an empty dataset of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::ZeroDimension`] if `dim == 0`.
    pub fn new(dim: usize) -> Result<Self, SpatialError> {
        if dim == 0 {
            return Err(SpatialError::ZeroDimension);
        }
        Ok(Self { dim, data: Vec::new() })
    }

    /// Creates an empty dataset with capacity for `n` points.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::ZeroDimension`] if `dim == 0`.
    pub fn with_capacity(dim: usize, n: usize) -> Result<Self, SpatialError> {
        if dim == 0 {
            return Err(SpatialError::ZeroDimension);
        }
        Self::check_len(n)?;
        Ok(Self { dim, data: Vec::with_capacity(dim * n) })
    }

    /// Builds a dataset from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0` or any row length differs from `dim`.
    pub fn from_rows(dim: usize, rows: &[&[f64]]) -> Result<Self, SpatialError> {
        let mut ds = Self::with_capacity(dim, rows.len())?;
        for row in rows {
            ds.push(row)?;
        }
        Ok(ds)
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim == 0`, `flat.len()` is not a multiple of
    /// `dim`, or any coordinate is non-finite.
    pub fn from_flat(dim: usize, flat: Vec<f64>) -> Result<Self, SpatialError> {
        if dim == 0 {
            return Err(SpatialError::ZeroDimension);
        }
        if !flat.len().is_multiple_of(dim) {
            return Err(SpatialError::RaggedBuffer { len: flat.len(), dim });
        }
        Self::check_len(flat.len() / dim)?;
        if let Some(pos) = flat.iter().position(|x| !x.is_finite()) {
            return Err(SpatialError::NonFiniteCoordinate { point: pos / dim, coord: pos % dim });
        }
        Ok(Self { dim, data: flat })
    }

    /// Builds a dataset from a flat row-major buffer **without** the
    /// finiteness validation of [`Dataset::from_flat`]. Intended for
    /// pre-validated buffers and for fault-injection tests that need to
    /// smuggle NaN/∞ past the ingest boundary on purpose; consumers such as
    /// `run_pipeline` re-validate defensively.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, the buffer is ragged, or the point count
    /// exceeds [`Dataset::MAX_POINTS`] (programmer errors, not data
    /// errors). The u32-id invariant is *not* bypassable: downstream casts
    /// rely on it unconditionally.
    pub fn from_flat_unchecked(dim: usize, flat: Vec<f64>) -> Self {
        assert!(dim > 0, "dataset dimensionality must be non-zero");
        assert!(flat.len().is_multiple_of(dim), "flat buffer is ragged");
        assert!(flat.len() / dim <= Self::MAX_POINTS, "dataset exceeds the u32 id range");
        Self { dim, data: flat }
    }

    /// Appends a point.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::DimensionMismatch`] if `point.len() != dim`,
    /// [`SpatialError::NonFiniteCoordinate`] if a coordinate is NaN/±∞, or
    /// [`SpatialError::TooManyPoints`] if the dataset is already at
    /// [`Dataset::MAX_POINTS`].
    pub fn push(&mut self, point: &[f64]) -> Result<(), SpatialError> {
        if point.len() != self.dim {
            return Err(SpatialError::DimensionMismatch { expected: self.dim, got: point.len() });
        }
        Self::check_len(self.len() + 1)?;
        if let Some(coord) = point.iter().position(|x| !x.is_finite()) {
            return Err(SpatialError::NonFiniteCoordinate { point: self.len(), coord });
        }
        self.data.extend_from_slice(point);
        Ok(())
    }

    /// Checks that every stored coordinate is finite.
    ///
    /// Datasets built through the safe constructors always pass; this
    /// exists so consumers can cheaply re-validate data that may have come
    /// through [`Dataset::from_flat_unchecked`].
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::NonFiniteCoordinate`] for the first
    /// offending coordinate.
    pub fn validate(&self) -> Result<(), SpatialError> {
        if let Some(pos) = self.data.iter().position(|x| !x.is_finite()) {
            return Err(SpatialError::NonFiniteCoordinate {
                point: pos / self.dim,
                coord: pos % self.dim,
            });
        }
        Ok(())
    }

    /// Dimensionality of the points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrow point `i`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&[f64]> {
        if i < self.len() {
            Some(self.point(i))
        } else {
            None
        }
    }

    /// Iterator over all points in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the dataset, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// A new dataset containing only the points whose indices are listed in
    /// `ids` (in that order). Out-of-range ids panic.
    pub fn subset(&self, ids: &[usize]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, ids.len()).expect("dim > 0");
        for &i in ids {
            out.data.extend_from_slice(self.point(i));
        }
        out
    }

    /// A new dataset keeping only the first `d` coordinates of every point.
    ///
    /// Used by the dimension-scaling experiments: the paper generates its
    /// 10-d set as the 20-d set projected onto the first 10 dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `d > self.dim()`.
    pub fn project(&self, d: usize) -> Dataset {
        assert!(d > 0 && d <= self.dim, "projection dimension {d} out of range");
        if d == self.dim {
            return self.clone();
        }
        let mut out = Dataset::with_capacity(d, self.len()).expect("dim > 0");
        for p in self.iter() {
            out.data.extend_from_slice(&p[..d]);
        }
        out
    }

    /// Component-wise bounding box `(min, max)` of all points.
    ///
    /// Returns `None` for an empty dataset.
    pub fn bounding_box(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.point(0).to_vec();
        let mut hi = lo.clone();
        for p in self.iter().skip(1) {
            for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(p) {
                if x < *l {
                    *l = x;
                }
                if x > *h {
                    *h = x;
                }
            }
        }
        Some((lo, hi))
    }

    /// The centroid (mean vector) of all points, or `None` when empty.
    pub fn centroid(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut sum = vec![0.0; self.dim];
        for p in self.iter() {
            for (s, &x) in sum.iter_mut().zip(p) {
                *s += x;
            }
        }
        let n = self.len() as f64;
        for s in &mut sum {
            *s /= n;
        }
        Some(sum)
    }

    /// Appends all points of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::DimensionMismatch`] when dimensionalities
    /// differ, or [`SpatialError::TooManyPoints`] when the concatenation
    /// would exceed [`Dataset::MAX_POINTS`].
    pub fn extend_from(&mut self, other: &Dataset) -> Result<(), SpatialError> {
        if other.dim != self.dim {
            return Err(SpatialError::DimensionMismatch { expected: self.dim, got: other.dim });
        }
        Self::check_len(self.len() + other.len())?;
        self.data.extend_from_slice(&other.data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(2, &[&[0.0, 0.0], &[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn new_rejects_zero_dim() {
        assert_eq!(Dataset::new(0).unwrap_err(), SpatialError::ZeroDimension);
        assert_eq!(Dataset::with_capacity(0, 10).unwrap_err(), SpatialError::ZeroDimension);
        assert_eq!(Dataset::from_flat(0, vec![]).unwrap_err(), SpatialError::ZeroDimension);
    }

    #[test]
    fn push_and_access_round_trip() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.point(1), &[1.0, 2.0]);
        assert_eq!(ds.get(2), Some(&[3.0, 4.0][..]));
        assert_eq!(ds.get(3), None);
    }

    #[test]
    fn push_rejects_wrong_dimension() {
        let mut ds = Dataset::new(2).unwrap();
        let err = ds.push(&[1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, SpatialError::DimensionMismatch { expected: 2, got: 3 });
    }

    #[test]
    fn from_flat_rejects_ragged() {
        let err = Dataset::from_flat(2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, SpatialError::RaggedBuffer { len: 3, dim: 2 });
    }

    #[test]
    fn iter_yields_rows_in_order() {
        let ds = small();
        let rows: Vec<&[f64]> = ds.iter().collect();
        assert_eq!(rows, vec![&[0.0, 0.0][..], &[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(ds.iter().len(), 3);
    }

    #[test]
    fn subset_selects_and_reorders() {
        let ds = small();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), &[3.0, 4.0]);
        assert_eq!(sub.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn project_keeps_prefix_coordinates() {
        let ds = Dataset::from_rows(3, &[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let p = ds.project(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.point(0), &[1.0, 2.0]);
        assert_eq!(p.point(1), &[4.0, 5.0]);
        // Projecting to the full dimension is a clone.
        assert_eq!(ds.project(3), ds);
    }

    #[test]
    #[should_panic(expected = "projection dimension")]
    fn project_rejects_too_large() {
        small().project(5);
    }

    #[test]
    fn bounding_box_and_centroid() {
        let ds = small();
        let (lo, hi) = ds.bounding_box().unwrap();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![3.0, 4.0]);
        let c = ds.centroid().unwrap();
        assert!((c[0] - 4.0 / 3.0).abs() < 1e-12);
        assert!((c[1] - 2.0).abs() < 1e-12);

        let empty = Dataset::new(2).unwrap();
        assert!(empty.bounding_box().is_none());
        assert!(empty.centroid().is_none());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = small();
        let b = Dataset::from_rows(2, &[&[9.0, 9.0]]).unwrap();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a.point(3), &[9.0, 9.0]);

        let c = Dataset::new(3).unwrap();
        assert!(a.extend_from(&c).is_err());
    }

    #[test]
    fn non_finite_coordinates_are_rejected_at_ingest() {
        let mut ds = Dataset::new(2).unwrap();
        ds.push(&[0.0, 1.0]).unwrap();
        let err = ds.push(&[f64::NAN, 1.0]).unwrap_err();
        assert_eq!(err, SpatialError::NonFiniteCoordinate { point: 1, coord: 0 });
        let err = ds.push(&[1.0, f64::INFINITY]).unwrap_err();
        assert_eq!(err, SpatialError::NonFiniteCoordinate { point: 1, coord: 1 });
        // A failed push leaves the dataset unchanged.
        assert_eq!(ds.len(), 1);
        assert!(ds.validate().is_ok());

        let err = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, f64::NEG_INFINITY]).unwrap_err();
        assert_eq!(err, SpatialError::NonFiniteCoordinate { point: 1, coord: 1 });
        let err = Dataset::from_rows(1, &[&[1.0], &[f64::NAN]]).unwrap_err();
        assert_eq!(err, SpatialError::NonFiniteCoordinate { point: 1, coord: 0 });
    }

    #[test]
    fn unchecked_constructor_bypasses_validation() {
        let ds = Dataset::from_flat_unchecked(2, vec![0.0, f64::NAN]);
        assert_eq!(ds.len(), 1);
        assert_eq!(
            ds.validate().unwrap_err(),
            SpatialError::NonFiniteCoordinate { point: 0, coord: 1 }
        );
    }

    #[test]
    fn oversized_point_counts_are_rejected_at_ingest() {
        // The guard fires before any allocation, so the boundary is
        // testable without materializing 2³² points.
        assert_eq!(
            Dataset::with_capacity(2, Dataset::MAX_POINTS + 1).unwrap_err(),
            SpatialError::TooManyPoints { len: Dataset::MAX_POINTS + 1, max: Dataset::MAX_POINTS }
        );
        // At the cap itself the guard passes (capacity is reserved lazily
        // by Vec only as data arrives, so this does not allocate 34 GB).
        assert_eq!(Dataset::check_len(Dataset::MAX_POINTS), Ok(()));
        assert_eq!(
            Dataset::check_len(Dataset::MAX_POINTS + 1),
            Err(SpatialError::TooManyPoints {
                len: Dataset::MAX_POINTS + 1,
                max: Dataset::MAX_POINTS
            })
        );
        // The sentinel id stays representable: MAX_POINTS == u32::MAX, so
        // the largest valid id is u32::MAX - 1.
        assert_eq!(Dataset::MAX_POINTS, u32::MAX as usize);
    }

    #[test]
    fn flat_round_trip() {
        let ds = small();
        let flat = ds.clone().into_flat();
        assert_eq!(flat.len(), 6);
        let back = Dataset::from_flat(2, flat).unwrap();
        assert_eq!(back, ds);
        assert_eq!(back.as_flat()[3], 2.0);
    }
}
