use std::fmt;

/// Errors produced when constructing or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpatialError {
    /// The dimensionality was zero.
    ZeroDimension,
    /// A row had a different length than the dataset dimensionality.
    DimensionMismatch {
        /// Dimensionality of the dataset.
        expected: usize,
        /// Length of the offending row.
        got: usize,
    },
    /// The flat buffer length was not a multiple of the dimensionality.
    RaggedBuffer {
        /// Length of the flat buffer.
        len: usize,
        /// Dimensionality of the dataset.
        dim: usize,
    },
    /// A coordinate was NaN or ±∞. Non-finite coordinates poison every
    /// distance computation downstream, so they are rejected at the
    /// dataset ingest boundary.
    NonFiniteCoordinate {
        /// Index of the offending point (the dataset length at the time of
        /// the rejected push, or the row index for bulk constructors).
        point: usize,
        /// Index of the offending coordinate within the point.
        coord: usize,
    },
    /// The dataset would exceed [`crate::Dataset::MAX_POINTS`] points.
    /// Object ids travel through the pipelines as `u32` (classification
    /// assignments, grid cells, expanded orderings), so the ingest boundary
    /// rejects datasets whose ids would not fit instead of letting the
    /// downstream casts truncate silently.
    TooManyPoints {
        /// The requested number of points.
        len: usize,
        /// The maximum representable number of points.
        max: usize,
    },
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::ZeroDimension => write!(f, "dataset dimensionality must be non-zero"),
            SpatialError::DimensionMismatch { expected, got } => {
                write!(f, "row has {got} coordinates, dataset dimensionality is {expected}")
            }
            SpatialError::RaggedBuffer { len, dim } => {
                write!(f, "flat buffer of length {len} is not a multiple of dimension {dim}")
            }
            SpatialError::NonFiniteCoordinate { point, coord } => {
                write!(f, "point {point}, coordinate {coord} is not finite (NaN or infinite)")
            }
            SpatialError::TooManyPoints { len, max } => {
                write!(f, "dataset of {len} points exceeds the {max}-point id range (u32 ids)")
            }
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SpatialError::ZeroDimension.to_string().contains("non-zero"));
        let e = SpatialError::DimensionMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));
        let e = SpatialError::RaggedBuffer { len: 7, dim: 2 };
        assert!(e.to_string().contains('7') && e.to_string().contains('2'));
        let e = SpatialError::NonFiniteCoordinate { point: 4, coord: 1 };
        assert!(e.to_string().contains('4') && e.to_string().contains("finite"));
        let e = SpatialError::TooManyPoints { len: 5_000_000_000, max: 4_294_967_295 };
        assert!(e.to_string().contains("5000000000") && e.to_string().contains("u32"));
    }
}
