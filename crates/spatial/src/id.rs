//! Blessed `usize → u32` id casts.
//!
//! Object and bubble ids travel through the pipelines as `u32`; the
//! ingest boundary caps datasets at [`Dataset::MAX_POINTS`] so every id
//! fits. A bare `as u32` elsewhere re-introduces the silent-truncation
//! hazard the cap closed (a 5-billion-point "dataset" would quietly
//! alias ids), so the `checked-id-cast` audit rule requires casts to go
//! through one of these two helpers:
//!
//! * [`checked_id`] at *boundaries* — the count is untrusted and the
//!   caller can surface [`SpatialError::TooManyPoints`].
//! * [`id_u32`] in *interior* code — the cap is already enforced
//!   upstream (the value derives from a `Dataset` length or a
//!   representative count), so overflow is a programmer error caught by
//!   the debug assertion, not a data error.

use crate::dataset::Dataset;
use crate::error::SpatialError;

/// Fallibly narrows a count/index to a `u32` id.
///
/// # Errors
///
/// [`SpatialError::TooManyPoints`] when `u` exceeds
/// [`Dataset::MAX_POINTS`].
#[inline]
pub fn checked_id(u: usize) -> Result<u32, SpatialError> {
    u32::try_from(u).map_err(|_| SpatialError::TooManyPoints { len: u, max: Dataset::MAX_POINTS })
}

/// Narrows an id already bounded by [`Dataset::MAX_POINTS`] upstream.
///
/// # Panics
///
/// Debug builds assert the bound; release builds rely on the upstream
/// cap (ingest rejects datasets whose ids would not fit).
#[inline]
pub fn id_u32(u: usize) -> u32 {
    debug_assert!(
        u <= Dataset::MAX_POINTS,
        "id {u} exceeds the u32 id range — missing ingest cap?"
    );
    u as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_id_round_trips_and_rejects() {
        assert_eq!(checked_id(0), Ok(0));
        assert_eq!(checked_id(Dataset::MAX_POINTS), Ok(u32::MAX));
        assert_eq!(
            checked_id(Dataset::MAX_POINTS + 1),
            Err(SpatialError::TooManyPoints {
                len: Dataset::MAX_POINTS + 1,
                max: Dataset::MAX_POINTS
            })
        );
    }

    #[test]
    fn id_u32_narrows_in_range() {
        assert_eq!(id_u32(42), 42);
        assert_eq!(id_u32(Dataset::MAX_POINTS), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 id range")]
    #[cfg(debug_assertions)]
    fn id_u32_asserts_out_of_range() {
        let _ = id_u32(Dataset::MAX_POINTS + 1);
    }
}
