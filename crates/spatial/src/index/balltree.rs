//! A ball tree: hierarchical bounding spheres over dataset indices.
//!
//! KD-trees prune with axis-aligned slabs, which degrade in moderate/high
//! dimensionality; bounding spheres stay tight, so the ball tree is the
//! better default beyond ~8 dimensions (the Corel workload's regime).
//! Construction splits each node on the diameter direction approximated by
//! a double-farthest-point sweep.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dataset::Dataset;
use crate::index::{sort_neighbors, Neighbor, SpatialIndex};
use crate::kernels;
use crate::metric::{Euclidean, Metric, SquaredEuclidean};

const LEAF_SIZE: usize = 16;

/// Rows per kernel flush of the leaf scan loops. Regular leaves hold at
/// most [`LEAF_SIZE`] ids, but the zero-radius degenerate case produces
/// one arbitrarily large leaf, so leaves are chunked.
const LEAF_BATCH: usize = 64;

#[derive(Debug, Clone)]
struct Ball {
    center: Vec<f64>,
    radius: f64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { start: u32, end: u32 },
    Split { left: u32 },
}

/// A ball tree supporting ε-range and k-NN queries.
#[derive(Debug, Clone)]
pub struct BallTree {
    nodes: Vec<Node>,
    balls: Vec<Ball>,
    ids: Vec<u32>,
    n: usize,
    dim: usize,
}

impl BallTree {
    /// Builds the tree in O(n log n) distance computations.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        let mut balls = Vec::new();
        if n > 0 {
            nodes.push(Node::Leaf { start: 0, end: n as u32 });
            balls.push(Ball { center: vec![0.0; ds.dim()], radius: 0.0 });
            build_rec(ds, &mut nodes, &mut balls, &mut ids, 0, 0, n);
        }
        Self { nodes, balls, ids, n, dim: ds.dim() }
    }

    /// Lower bound on the distance from `q` to any point in node `i`.
    #[inline]
    fn min_dist(&self, i: usize, q: &[f64]) -> f64 {
        let b = &self.balls[i];
        // db-audit: allow(no-naked-sqrt) -- by design: the triangle-inequality
        // bound |q - center| - radius only exists in true-distance space.
        (SquaredEuclidean.dist(q, &b.center).sqrt() - b.radius).max(0.0)
    }
}

fn build_rec(
    ds: &Dataset,
    nodes: &mut Vec<Node>,
    balls: &mut Vec<Ball>,
    ids: &mut [u32],
    node: usize,
    start: usize,
    end: usize,
) {
    // Bounding ball: centroid + max distance.
    let dim = ds.dim();
    let mut center = vec![0.0f64; dim];
    for &id in &ids[start..end] {
        for (c, &x) in center.iter_mut().zip(ds.point(id as usize)) {
            *c += x;
        }
    }
    let len = end - start;
    for c in &mut center {
        *c /= len as f64;
    }
    let radius = ids[start..end]
        .iter()
        .map(|&id| SquaredEuclidean.dist(&center, ds.point(id as usize)))
        .fold(0.0f64, f64::max)
        // db-audit: allow(no-naked-sqrt) -- build-time only: ball radii live in
        // true space to pair with the min_dist triangle-inequality bound.
        .sqrt();
    balls[node] = Ball { center, radius };

    if len <= LEAF_SIZE || radius <= 0.0 {
        nodes[node] = Node::Leaf { start: start as u32, end: end as u32 };
        return;
    }
    // Split direction: farthest point from the centroid, then the point
    // farthest from it (approximate diameter).
    let c = &balls[node].center;
    let a = *ids[start..end]
        .iter()
        .max_by(|&&x, &&y| {
            SquaredEuclidean
                .dist(c, ds.point(x as usize))
                .total_cmp(&SquaredEuclidean.dist(c, ds.point(y as usize)))
        })
        .expect("non-empty");
    let b = *ids[start..end]
        .iter()
        .max_by(|&&x, &&y| {
            SquaredEuclidean
                .dist(ds.point(a as usize), ds.point(x as usize))
                .total_cmp(&SquaredEuclidean.dist(ds.point(a as usize), ds.point(y as usize)))
        })
        .expect("non-empty");
    // Partition by projection onto the a→b axis (median split).
    let pa = ds.point(a as usize).to_vec();
    let pb = ds.point(b as usize).to_vec();
    let axis: Vec<f64> = pb.iter().zip(&pa).map(|(&x, &y)| x - y).collect();
    let mid = start + len / 2;
    let project =
        |id: u32| -> f64 { ds.point(id as usize).iter().zip(&axis).map(|(&x, &ax)| x * ax).sum() };
    ids[start..end].select_nth_unstable_by(len / 2, |&x, &y| project(x).total_cmp(&project(y)));

    let left = nodes.len() as u32;
    nodes.push(Node::Leaf { start: 0, end: 0 });
    balls.push(Ball { center: vec![0.0; dim], radius: 0.0 });
    nodes.push(Node::Leaf { start: 0, end: 0 });
    balls.push(Ball { center: vec![0.0; dim], radius: 0.0 });
    nodes[node] = Node::Split { left };
    build_rec(ds, nodes, balls, ids, left as usize, start, mid);
    build_rec(ds, nodes, balls, ids, left as usize + 1, mid, end);
}

impl SpatialIndex for BallTree {
    fn len(&self) -> usize {
        self.n
    }

    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || eps.is_nan() || eps < 0.0 {
            return;
        }
        let eps_sq = eps * eps;
        let (mut visited, mut pruned, mut evals) = (0u64, 0u64, 0u64);
        let flat = ds.as_flat();
        let mut buf = [0.0f64; LEAF_BATCH];
        let mut stack = vec![0usize];
        // Node-level pruning uses a sqrt-round-tripped lower bound; relax it
        // slightly so boundary-exact points can never be pruned (membership
        // itself is decided by exact squared distances below).
        let prune_eps = eps + 1e-9 * (1.0 + eps);
        while let Some(node) = stack.pop() {
            if self.min_dist(node, q) > prune_eps {
                pruned += 1;
                continue;
            }
            visited += 1;
            match self.nodes[node] {
                Node::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for chunk in self.ids[start as usize..end as usize].chunks(LEAF_BATCH) {
                        kernels::dists_to_indexed(
                            q,
                            flat,
                            self.dim,
                            chunk,
                            &mut buf[..chunk.len()],
                        );
                        for (&id, &d2) in chunk.iter().zip(&buf[..chunk.len()]) {
                            if d2 <= eps_sq {
                                out.push(Neighbor::new(
                                    id as usize,
                                    Euclidean.surrogate_to_dist(d2),
                                ));
                            }
                        }
                    }
                }
                Node::Split { left } => {
                    stack.push(left as usize);
                    stack.push(left as usize + 1);
                }
            }
        }
        db_obs::counter!("spatial.range_queries").incr();
        db_obs::counter!("spatial.nodes_visited").add(visited);
        db_obs::counter!("spatial.subtrees_pruned").add(pruned);
        db_obs::counter!("spatial.dist_evals").add(evals);
        // One sqrt per `min_dist` bound (each popped node) plus one per
        // reported neighbor.
        db_obs::counter!("spatial.sqrt_evals").add(out.len() as u64 + visited + pruned);
        sort_neighbors(out);
    }

    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || k == 0 {
            return;
        }
        // (dist, id) under the shared total order; the id tie-break keeps
        // result order identical to LinearScan.
        use crate::order::DistId as Cand;
        let k = k.min(self.n);
        let (mut visited, mut evals, mut bound_sqrts) = (0u64, 0u64, 0u64);
        let flat = ds.as_flat();
        let mut buf = [0.0f64; LEAF_BATCH];
        let mut best: BinaryHeap<Cand> = BinaryHeap::with_capacity(k + 1);
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        frontier.push(Reverse(Cand(0.0, 0)));
        while let Some(Reverse(Cand(min_d, node))) = frontier.pop() {
            if best.len() == k {
                // best stores squared distances; frontier stores true
                // lower-bound distances, whose sqrt round-trip can inflate
                // the square by a few ulps — keep exploring within that
                // tolerance so exact-distance ties resolve identically to
                // the linear scan (lower ids win).
                let worst = best.peek().expect("non-empty").0;
                if min_d * min_d > worst * (1.0 + 1e-9) + f64::MIN_POSITIVE {
                    break;
                }
            }
            visited += 1;
            match self.nodes[node] {
                Node::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for chunk in self.ids[start as usize..end as usize].chunks(LEAF_BATCH) {
                        kernels::dists_to_indexed(
                            q,
                            flat,
                            self.dim,
                            chunk,
                            &mut buf[..chunk.len()],
                        );
                        for (&id, &d2) in chunk.iter().zip(&buf[..chunk.len()]) {
                            let cand = Cand(d2, id as usize);
                            if best.len() < k {
                                best.push(cand);
                            } else if cand < *best.peek().expect("non-empty") {
                                best.pop();
                                best.push(cand);
                            }
                        }
                    }
                }
                Node::Split { left } => {
                    bound_sqrts += 2;
                    for child in [left as usize, left as usize + 1] {
                        frontier.push(Reverse(Cand(self.min_dist(child, q), child)));
                    }
                }
            }
        }
        db_obs::counter!("spatial.knn_queries").incr();
        db_obs::counter!("spatial.nodes_visited").add(visited);
        db_obs::counter!("spatial.subtrees_pruned").add(frontier.len() as u64);
        db_obs::counter!("spatial.dist_evals").add(evals);
        // One sqrt per `min_dist` bound on pushed children plus one per
        // reported neighbor.
        db_obs::counter!("spatial.sqrt_evals").add(best.len() as u64 + bound_sqrts);
        out.extend(
            best.into_iter().map(|Cand(d2, id)| Neighbor::new(id, Euclidean.surrogate_to_dist(d2))),
        );
        sort_neighbors(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::linear::LinearScan;

    fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dim).unwrap();
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next() * 10.0 - 5.0).collect();
            ds.push(&p).unwrap();
        }
        ds
    }

    #[test]
    fn range_matches_linear_scan() {
        for &dim in &[2usize, 5, 9, 16] {
            let ds = random_ds(400, dim, 3 + dim as u64);
            let tree = BallTree::build(&ds);
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 100, 399] {
                let q = ds.point(qi).to_vec();
                for eps in [0.0, 1.0, 4.0, 100.0] {
                    tree.range(&ds, &q, eps, &mut a);
                    lin.range(&ds, &q, eps, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        for &dim in &[2usize, 9] {
            let ds = random_ds(300, dim, 11 + dim as u64);
            let tree = BallTree::build(&ds);
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 150, 299] {
                let q = ds.point(qi).to_vec();
                for k in [1usize, 7, 64, 300] {
                    tree.knn(&ds, &q, k, &mut a);
                    lin.knn(&ds, &q, k, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_ties_with_interleaved_duplicates_match_linear() {
        // Regression: sqrt-round-tripped pruning bounds used to drop
        // exact-distance ties, resolving them differently from the linear
        // scan's (distance, id) order.
        let mut ds = Dataset::new(3).unwrap();
        for i in 0..300 {
            let base = [(i % 10) as f64, ((i / 10) % 10) as f64, (i / 100) as f64];
            // Every third point is an exact duplicate of a grid node.
            ds.push(&base).unwrap();
        }
        let tree = BallTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for qi in [0usize, 50, 150, 299] {
            let q = ds.point(qi).to_vec();
            for k in [1usize, 3, 10] {
                tree.knn(&ds, &q, k, &mut a);
                lin.knn(&ds, &q, k, &mut b);
                assert_eq!(
                    a.iter().map(|n| n.id).collect::<Vec<_>>(),
                    b.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "qi={qi} k={k}"
                );
            }
        }
    }

    #[test]
    fn duplicates_and_empty() {
        let ds = Dataset::new(3).unwrap();
        let t = BallTree::build(&ds);
        let mut out = Vec::new();
        t.range(&ds, &[0.0; 3], 1.0, &mut out);
        assert!(out.is_empty());

        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..50 {
            ds.push(&[2.0, 2.0]).unwrap();
        }
        let t = BallTree::build(&ds);
        t.range(&ds, &[2.0, 2.0], 0.0, &mut out);
        assert_eq!(out.len(), 50);
        t.knn(&ds, &[0.0, 0.0], 3, &mut out);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
