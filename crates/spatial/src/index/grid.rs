//! A uniform grid (cell) index.
//!
//! For density-based algorithms the dominant query is an ε-range query with
//! a *fixed* ε, so a grid with cell width ε answers it by inspecting the
//! 3^d surrounding cells. Cells are kept in a hash map keyed by integer
//! cell coordinates, so the grid adapts to any data extent without
//! allocating empty cells.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::index::{sort_neighbors, Neighbor, SpatialIndex};
use crate::kernels;
use crate::metric::{Euclidean, Metric};

/// Maximum dimensionality for which a grid is built; beyond this the 3^d
/// neighbourhood enumeration dominates and a KD-tree should be used.
pub const MAX_GRID_DIM: usize = 6;

/// Candidate ids gathered from cell enumeration before each kernel flush.
/// Stack-resident so the query loops stay allocation-free.
const GATHER_ROWS: usize = 256;

/// A uniform grid index with a fixed cell width.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    dim: usize,
    n: usize,
    origin: Vec<f64>,
    cells: HashMap<Vec<i32>, Vec<u32>>,
    /// Per-dimension min/max occupied cell coordinate, used to clamp query
    /// boxes so far-away queries do not enumerate oceans of empty cells.
    cell_lo: Vec<i32>,
    cell_hi: Vec<i32>,
}

impl GridIndex {
    /// Builds a grid with the given cell width (usually the ε of subsequent
    /// range queries).
    ///
    /// Returns `None` when the grid is not applicable: zero/NaN/infinite
    /// cell width, dimensionality above [`MAX_GRID_DIM`], or data whose
    /// extent would overflow the 32-bit cell coordinates.
    pub fn build(ds: &Dataset, cell_width: f64) -> Option<Self> {
        if cell_width.is_nan()
            || cell_width <= 0.0
            || !cell_width.is_finite()
            || ds.dim() > MAX_GRID_DIM
        {
            return None;
        }
        let origin = match ds.bounding_box() {
            Some((lo, hi)) => {
                // Reject extents that would overflow cell coordinates.
                for (l, h) in lo.iter().zip(&hi) {
                    if (h - l) / cell_width > i32::MAX as f64 / 4.0 {
                        return None;
                    }
                }
                lo
            }
            None => vec![0.0; ds.dim()],
        };
        let mut cells: HashMap<Vec<i32>, Vec<u32>> = HashMap::new();
        let mut key = vec![0i32; ds.dim()];
        let mut cell_lo = vec![i32::MAX; ds.dim()];
        let mut cell_hi = vec![i32::MIN; ds.dim()];
        for (id, p) in ds.iter().enumerate() {
            Self::cell_key(&origin, cell_width, p, &mut key);
            for ((l, h), &k) in cell_lo.iter_mut().zip(cell_hi.iter_mut()).zip(&key) {
                if k < *l {
                    *l = k;
                }
                if k > *h {
                    *h = k;
                }
            }
            // Lossless: `Dataset` caps its length at `Dataset::MAX_POINTS`
            // (u32 ids), enforced at the ingest boundary.
            match cells.entry(key.clone()) {
                Entry::Occupied(mut e) => e.get_mut().push(id as u32),
                Entry::Vacant(e) => {
                    e.insert(vec![id as u32]);
                }
            }
        }
        Some(Self { cell: cell_width, dim: ds.dim(), n: ds.len(), origin, cells, cell_lo, cell_hi })
    }

    /// Cell width the grid was built with.
    pub fn cell_width(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    #[inline]
    fn cell_key(origin: &[f64], cell: f64, p: &[f64], key: &mut [i32]) {
        for ((k, &x), &o) in key.iter_mut().zip(p).zip(origin) {
            *k = ((x - o) / cell).floor() as i32;
        }
    }

    /// Visits all points in cells intersecting the axis-aligned box of
    /// half-width `radius` around `q`.
    fn visit_box(&self, q: &[f64], radius: f64, mut f: impl FnMut(u32)) {
        let mut lo = vec![0i32; self.dim];
        let mut hi = vec![0i32; self.dim];
        for j in 0..self.dim {
            lo[j] = (((q[j] - radius - self.origin[j]) / self.cell).floor() as i32)
                .max(self.cell_lo[j]);
            hi[j] = (((q[j] + radius - self.origin[j]) / self.cell).floor() as i32)
                .min(self.cell_hi[j]);
            if lo[j] > hi[j] {
                return; // query box misses every occupied cell
            }
        }
        // A radius much larger than the cell width makes the box bigger
        // than the cell table itself (ε → ∞ degenerates to the full
        // occupied bounding box — (extent/cell)^d cells, almost all
        // empty on sparse data). Enumerating occupied cells and testing
        // box membership visits the same points at O(occupied) cost; the
        // caller sorts results, so the hash-map order does not leak.
        let volume = lo
            .iter()
            .zip(&hi)
            .try_fold(1u64, |v, (&l, &h)| v.checked_mul((h as i64 - l as i64 + 1) as u64));
        match volume {
            Some(v) if v as usize <= self.cells.len() => {}
            _ => {
                for (key, ids) in &self.cells {
                    if key.iter().zip(lo.iter().zip(&hi)).all(|(&k, (&l, &h))| l <= k && k <= h) {
                        for &id in ids {
                            f(id);
                        }
                    }
                }
                return;
            }
        }
        // Odometer enumeration of the integer box [lo, hi].
        let mut cur = lo.clone();
        loop {
            if let Some(ids) = self.cells.get(&cur) {
                for &id in ids {
                    f(id);
                }
            }
            // Increment odometer.
            let mut j = 0;
            loop {
                if j == self.dim {
                    return;
                }
                cur[j] += 1;
                if cur[j] <= hi[j] {
                    break;
                }
                cur[j] = lo[j];
                j += 1;
            }
        }
    }
}

impl SpatialIndex for GridIndex {
    fn len(&self) -> usize {
        self.n
    }

    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || eps.is_nan() || eps < 0.0 {
            return;
        }
        // Candidates from cell enumeration are batched into a stack buffer
        // and flushed through the gathered kernel, so the per-candidate
        // cost is one gather + one squared distance (squared-surrogate
        // convention: compare against ε², sqrt only reported results).
        let eps_sq = eps * eps;
        let flat = ds.as_flat();
        let dim = self.dim;
        let mut ids = [0u32; GATHER_ROWS];
        let mut d2s = [0.0f64; GATHER_ROWS];
        let mut pending = 0usize;
        let mut evals = 0u64;
        self.visit_box(q, eps, |id| {
            ids[pending] = id;
            pending += 1;
            if pending == GATHER_ROWS {
                kernels::dists_to_indexed(q, flat, dim, &ids, &mut d2s);
                for (&d2, &id) in d2s.iter().zip(&ids) {
                    if d2 <= eps_sq {
                        out.push(Neighbor::new(id as usize, Euclidean.surrogate_to_dist(d2)));
                    }
                }
                evals += GATHER_ROWS as u64;
                pending = 0;
            }
        });
        if pending > 0 {
            kernels::dists_to_indexed(q, flat, dim, &ids[..pending], &mut d2s[..pending]);
            for (&d2, &id) in d2s[..pending].iter().zip(&ids[..pending]) {
                if d2 <= eps_sq {
                    out.push(Neighbor::new(id as usize, Euclidean.surrogate_to_dist(d2)));
                }
            }
            evals += pending as u64;
        }
        db_obs::counter!("spatial.range_queries").incr();
        db_obs::counter!("spatial.dist_evals").add(evals);
        db_obs::counter!("spatial.sqrt_evals").add(out.len() as u64);
        sort_neighbors(out);
    }

    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || k == 0 {
            return;
        }
        let k = k.min(self.n);
        db_obs::counter!("spatial.knn_queries").incr();
        // Grow the search radius ring by ring until the k-th candidate is
        // provably within the scanned box.
        let flat = ds.as_flat();
        let dim = self.dim;
        let mut ids = [0u32; GATHER_ROWS];
        let mut d2s = [0.0f64; GATHER_ROWS];
        let mut radius = self.cell;
        let mut cands: Vec<Neighbor> = Vec::new();
        loop {
            cands.clear();
            let mut pending = 0usize;
            self.visit_box(q, radius, |id| {
                ids[pending] = id;
                pending += 1;
                if pending == GATHER_ROWS {
                    kernels::dists_to_indexed(q, flat, dim, &ids, &mut d2s);
                    cands.extend(
                        d2s.iter().zip(&ids).map(|(&d2, &id)| Neighbor::new(id as usize, d2)),
                    );
                    pending = 0;
                }
            });
            if pending > 0 {
                kernels::dists_to_indexed(q, flat, dim, &ids[..pending], &mut d2s[..pending]);
                cands.extend(
                    d2s[..pending]
                        .iter()
                        .zip(&ids[..pending])
                        .map(|(&d2, &id)| Neighbor::new(id as usize, d2)),
                );
            }
            db_obs::counter!("spatial.dist_evals").add(cands.len() as u64);
            if cands.len() >= k {
                cands.select_nth_unstable_by(k - 1, |a, b| {
                    a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id))
                });
                let kth = Euclidean.surrogate_to_dist(cands[k - 1].dist);
                db_obs::counter!("spatial.sqrt_evals").incr();
                // Every unscanned point is farther than `radius` (box
                // half-width) from q, so if the k-th distance fits inside we
                // are done.
                if kth <= radius {
                    cands.truncate(k);
                    db_obs::counter!("spatial.sqrt_evals").add(cands.len() as u64);
                    for n in &mut cands {
                        n.dist = Euclidean.surrogate_to_dist(n.dist);
                    }
                    sort_neighbors(&mut cands);
                    out.extend_from_slice(&cands);
                    return;
                }
                radius = kth.max(radius * 2.0);
            } else {
                radius *= 2.0;
            }
            // Safety valve: once the box covers everything, finish.
            if cands.len() == self.n {
                let k = k.min(cands.len());
                cands.select_nth_unstable_by(k - 1, |a, b| {
                    a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id))
                });
                cands.truncate(k);
                db_obs::counter!("spatial.sqrt_evals").add(cands.len() as u64);
                for n in &mut cands {
                    n.dist = Euclidean.surrogate_to_dist(n.dist);
                }
                sort_neighbors(&mut cands);
                out.extend_from_slice(&cands);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::linear::LinearScan;

    fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dim).unwrap();
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next() * 20.0 - 10.0).collect();
            ds.push(&p).unwrap();
        }
        ds
    }

    #[test]
    fn build_rejects_bad_parameters() {
        let ds = random_ds(10, 2, 1);
        assert!(GridIndex::build(&ds, 0.0).is_none());
        assert!(GridIndex::build(&ds, -1.0).is_none());
        assert!(GridIndex::build(&ds, f64::NAN).is_none());
        assert!(GridIndex::build(&ds, f64::INFINITY).is_none());
        let high = random_ds(10, MAX_GRID_DIM + 1, 1);
        assert!(GridIndex::build(&high, 1.0).is_none());
    }

    #[test]
    fn build_rejects_overflowing_extent() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1e18]]).unwrap();
        assert!(GridIndex::build(&ds, 1e-3).is_none());
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(2).unwrap();
        let g = GridIndex::build(&ds, 1.0).unwrap();
        assert_eq!(g.len(), 0);
        let mut out = Vec::new();
        g.range(&ds, &[0.0, 0.0], 5.0, &mut out);
        assert!(out.is_empty());
        g.knn(&ds, &[0.0, 0.0], 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_matches_linear_scan() {
        for &dim in &[1usize, 2, 3] {
            let ds = random_ds(400, dim, 11 + dim as u64);
            let g = GridIndex::build(&ds, 1.5).unwrap();
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 13, 200, 399] {
                let q = ds.point(qi).to_vec();
                for eps in [0.0, 0.4, 1.5, 3.7, 50.0] {
                    g.range(&ds, &q, eps, &mut a);
                    lin.range(&ds, &q, eps, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        for &dim in &[1usize, 2, 3] {
            let ds = random_ds(250, dim, 5 + dim as u64);
            let g = GridIndex::build(&ds, 0.8).unwrap();
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 100, 249] {
                let q = ds.point(qi).to_vec();
                for k in [1usize, 4, 50, 250, 999] {
                    g.knn(&ds, &q, k, &mut a);
                    lin.knn(&ds, &q, k, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn metadata_accessors() {
        let ds = random_ds(100, 2, 9);
        let g = GridIndex::build(&ds, 2.5).unwrap();
        assert_eq!(g.cell_width(), 2.5);
        assert!(g.occupied_cells() > 0 && g.occupied_cells() <= 100);
    }

    #[test]
    fn query_far_outside_data_extent() {
        let ds = random_ds(100, 2, 21);
        let g = GridIndex::build(&ds, 1.0).unwrap();
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let q = [1000.0, -1000.0];
        g.knn(&ds, &q, 3, &mut a);
        lin.knn(&ds, &q, 3, &mut b);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        g.range(&ds, &q, 5.0, &mut a);
        assert!(a.is_empty());
    }
}
