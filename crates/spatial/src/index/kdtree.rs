//! A KD-tree over dataset indices.
//!
//! Nodes are stored in a flat arena; leaves hold small buckets of point ids.
//! Splits are made at the median of the widest dimension of each node's
//! bounding box, which keeps the tree balanced for arbitrary (including
//! highly skewed) data distributions.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dataset::Dataset;
use crate::index::{sort_neighbors, Neighbor, SpatialIndex};
use crate::kernels;
use crate::metric::{Euclidean, Metric};

const LEAF_SIZE: usize = 16;

/// Rows per kernel flush of the leaf scan loops. Regular leaves hold at
/// most [`LEAF_SIZE`] ids, but the all-points-identical degenerate case
/// produces one arbitrarily large leaf, so leaves are chunked.
const LEAF_BATCH: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Range into `KdTree::ids`.
        start: u32,
        end: u32,
    },
    Split {
        dim: u16,
        value: f64,
        /// Index of the left child in the arena; right child is `left + 1`.
        left: u32,
    },
}

/// A balanced KD-tree supporting ε-range and k-NN queries.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    ids: Vec<u32>,
    n: usize,
    dim: usize,
}

impl KdTree {
    /// Builds the tree in O(n log² n).
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity((2 * n / LEAF_SIZE).max(1));
        if n > 0 {
            nodes.push(Node::Leaf { start: 0, end: n as u32 }); // placeholder root
            Self::build_rec(ds, &mut nodes, &mut ids, 0, 0, n);
        }
        Self { nodes, ids, n, dim: ds.dim() }
    }

    fn build_rec(
        ds: &Dataset,
        nodes: &mut Vec<Node>,
        ids: &mut [u32],
        node: usize,
        start: usize,
        end: usize,
    ) {
        let len = end - start;
        if len <= LEAF_SIZE {
            nodes[node] = Node::Leaf { start: start as u32, end: end as u32 };
            return;
        }
        // Widest dimension of this node's bounding box.
        let dim = ds.dim();
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for &id in &ids[start..end] {
            for (j, &x) in ds.point(id as usize).iter().enumerate() {
                if x < lo[j] {
                    lo[j] = x;
                }
                if x > hi[j] {
                    hi[j] = x;
                }
            }
        }
        let split_dim =
            (0..dim).max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b]))).expect("dim > 0");
        if hi[split_dim] - lo[split_dim] <= 0.0 {
            // All points identical in every dimension: keep as one leaf.
            nodes[node] = Node::Leaf { start: start as u32, end: end as u32 };
            return;
        }
        let mid = start + len / 2;
        ids[start..end].select_nth_unstable_by(len / 2, |&a, &b| {
            ds.point(a as usize)[split_dim].total_cmp(&ds.point(b as usize)[split_dim])
        });
        let value = ds.point(ids[mid] as usize)[split_dim];
        let left = nodes.len() as u32;
        nodes.push(Node::Leaf { start: 0, end: 0 }); // left placeholder
        nodes.push(Node::Leaf { start: 0, end: 0 }); // right placeholder
        nodes[node] = Node::Split { dim: split_dim as u16, value, left };
        Self::build_rec(ds, nodes, ids, left as usize, start, mid);
        Self::build_rec(ds, nodes, ids, left as usize + 1, mid, end);
    }
}

impl SpatialIndex for KdTree {
    fn len(&self) -> usize {
        self.n
    }

    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || eps.is_nan() || eps < 0.0 {
            return;
        }
        let eps_sq = eps * eps;
        // Per-query tallies, flushed to the global counters once at the
        // end so the hot loop stays free of shared-memory traffic.
        let (mut visited, mut pruned, mut evals) = (0u64, 0u64, 0u64);
        let flat = ds.as_flat();
        let mut buf = [0.0f64; LEAF_BATCH];
        // Iterative DFS; prune subtrees whose slab distance exceeds eps.
        let mut stack: Vec<(usize, f64)> = vec![(0, 0.0)];
        while let Some((node, min_d2)) = stack.pop() {
            if min_d2 > eps_sq {
                pruned += 1;
                continue;
            }
            visited += 1;
            match self.nodes[node] {
                Node::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for chunk in self.ids[start as usize..end as usize].chunks(LEAF_BATCH) {
                        kernels::dists_to_indexed(
                            q,
                            flat,
                            self.dim,
                            chunk,
                            &mut buf[..chunk.len()],
                        );
                        for (&id, &d2) in chunk.iter().zip(&buf[..chunk.len()]) {
                            if d2 <= eps_sq {
                                out.push(Neighbor::new(
                                    id as usize,
                                    Euclidean.surrogate_to_dist(d2),
                                ));
                            }
                        }
                    }
                }
                Node::Split { dim, value, left } => {
                    let delta = q[dim as usize] - value;
                    let gap = delta * delta;
                    let (near, far) = if delta < 0.0 {
                        (left as usize, left as usize + 1)
                    } else {
                        (left as usize + 1, left as usize)
                    };
                    // The near side keeps the parent's lower bound; the far
                    // side is at least `gap` away along the split axis.
                    stack.push((far, min_d2.max(gap)));
                    stack.push((near, min_d2));
                }
            }
        }
        db_obs::counter!("spatial.range_queries").incr();
        db_obs::counter!("spatial.nodes_visited").add(visited);
        db_obs::counter!("spatial.subtrees_pruned").add(pruned);
        db_obs::counter!("spatial.dist_evals").add(evals);
        db_obs::counter!("spatial.sqrt_evals").add(out.len() as u64);
        sort_neighbors(out);
    }

    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        out.clear();
        if self.n == 0 || k == 0 {
            return;
        }
        // Max-heap of the current k best (dist², id); the shared total
        // order includes the id so tie-breaking matches LinearScan exactly.
        use crate::order::DistId as Cand;

        let k = k.min(self.n);
        let (mut visited, mut evals) = (0u64, 0u64);
        let flat = ds.as_flat();
        let mut buf = [0.0f64; LEAF_BATCH];
        let mut best: BinaryHeap<Cand> = BinaryHeap::with_capacity(k + 1);
        // Best-first traversal of the tree.
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        frontier.push(Reverse(Cand(0.0, 0)));
        while let Some(Reverse(Cand(min_d2, node))) = frontier.pop() {
            if best.len() == k {
                let worst = best.peek().expect("non-empty");
                // Even an id-0 point at min_d2 cannot beat the current worst.
                if Cand(min_d2, 0) >= *worst {
                    break;
                }
            }
            visited += 1;
            match self.nodes[node] {
                Node::Leaf { start, end } => {
                    evals += (end - start) as u64;
                    for chunk in self.ids[start as usize..end as usize].chunks(LEAF_BATCH) {
                        kernels::dists_to_indexed(
                            q,
                            flat,
                            self.dim,
                            chunk,
                            &mut buf[..chunk.len()],
                        );
                        for (&id, &d2) in chunk.iter().zip(&buf[..chunk.len()]) {
                            let cand = Cand(d2, id as usize);
                            if best.len() < k {
                                best.push(cand);
                            } else if cand < *best.peek().expect("non-empty") {
                                best.pop();
                                best.push(cand);
                            }
                        }
                    }
                }
                Node::Split { dim, value, left } => {
                    let delta = q[dim as usize] - value;
                    let gap = delta * delta;
                    let (near, far) = if delta < 0.0 {
                        (left as usize, left as usize + 1)
                    } else {
                        (left as usize + 1, left as usize)
                    };
                    frontier.push(Reverse(Cand(min_d2, near)));
                    frontier.push(Reverse(Cand(min_d2.max(gap), far)));
                }
            }
        }
        db_obs::counter!("spatial.knn_queries").incr();
        db_obs::counter!("spatial.nodes_visited").add(visited);
        db_obs::counter!("spatial.subtrees_pruned").add(frontier.len() as u64);
        db_obs::counter!("spatial.dist_evals").add(evals);
        db_obs::counter!("spatial.sqrt_evals").add(best.len() as u64);
        out.extend(
            best.into_iter().map(|Cand(d2, id)| Neighbor::new(id, Euclidean.surrogate_to_dist(d2))),
        );
        sort_neighbors(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::linear::LinearScan;

    fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        // Tiny xorshift so the test does not depend on `rand`.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dim).unwrap();
        for _ in 0..n {
            let p: Vec<f64> = (0..dim).map(|_| next() * 10.0).collect();
            ds.push(&p).unwrap();
        }
        ds
    }

    #[test]
    fn empty_tree_queries() {
        let ds = Dataset::new(3).unwrap();
        let t = KdTree::build(&ds);
        let mut out = Vec::new();
        t.range(&ds, &[0.0, 0.0, 0.0], 1.0, &mut out);
        assert!(out.is_empty());
        t.knn(&ds, &[0.0, 0.0, 0.0], 5, &mut out);
        assert!(out.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn duplicate_points_form_single_leaf() {
        let mut ds = Dataset::new(2).unwrap();
        for _ in 0..100 {
            ds.push(&[1.0, 1.0]).unwrap();
        }
        let t = KdTree::build(&ds);
        let mut out = Vec::new();
        t.range(&ds, &[1.0, 1.0], 0.0, &mut out);
        assert_eq!(out.len(), 100);
        t.knn(&ds, &[0.0, 0.0], 3, &mut out);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn range_matches_linear_scan_on_random_data() {
        for &dim in &[1usize, 2, 3, 5] {
            let ds = random_ds(500, dim, 42 + dim as u64);
            let tree = KdTree::build(&ds);
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 7, 123, 499] {
                let q: Vec<f64> = ds.point(qi).to_vec();
                for eps in [0.0, 0.5, 2.0, 100.0] {
                    tree.range(&ds, &q, eps, &mut a);
                    lin.range(&ds, &q, eps, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} eps={eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan_on_random_data() {
        for &dim in &[1usize, 2, 4] {
            let ds = random_ds(300, dim, 7 + dim as u64);
            let tree = KdTree::build(&ds);
            let lin = LinearScan::build(&ds);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for qi in [0usize, 50, 299] {
                let q: Vec<f64> = ds.point(qi).to_vec();
                for k in [1usize, 5, 17, 300, 1000] {
                    tree.knn(&ds, &q, k, &mut a);
                    lin.knn(&ds, &q, k, &mut b);
                    assert_eq!(
                        a.iter().map(|n| n.id).collect::<Vec<_>>(),
                        b.iter().map(|n| n.id).collect::<Vec<_>>(),
                        "dim={dim} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn negative_eps_returns_nothing() {
        let ds = random_ds(100, 2, 3);
        let tree = KdTree::build(&ds);
        let mut out = Vec::new();
        tree.range(&ds, ds.point(0), -1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimensionality mismatch")]
    fn wrong_query_dim_panics() {
        let ds = random_ds(100, 2, 3);
        let tree = KdTree::build(&ds);
        let mut out = Vec::new();
        tree.range(&ds, &[0.0, 0.0, 0.0], 1.0, &mut out);
    }
}
