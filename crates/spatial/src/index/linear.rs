//! Exhaustive-scan index: the always-correct O(n) baseline against which the
//! tree and grid indexes are property-tested.

use crate::dataset::Dataset;
use crate::index::{sort_neighbors, Neighbor, SpatialIndex};
use crate::kernels;
use crate::metric::{Euclidean, Metric};

/// Rows per kernel block of the scan loops: 256 squared distances fit in a
/// 2 KiB stack buffer and keep each coordinate tile L1-resident.
const BLOCK_ROWS: usize = 256;

/// An index that answers every query by scanning all points.
#[derive(Debug, Clone)]
pub struct LinearScan {
    n: usize,
}

impl LinearScan {
    /// "Builds" the index (records only the dataset length).
    pub fn build(ds: &Dataset) -> Self {
        Self { n: ds.len() }
    }
}

impl SpatialIndex for LinearScan {
    fn len(&self) -> usize {
        self.n
    }

    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        out.clear();
        if eps.is_nan() || eps < 0.0 {
            return; // negative eps would square into a positive radius
        }
        // Squared-surrogate convention: compare d² against ε² in the scan
        // and convert only reported results back to distances.
        let eps_sq = eps * eps;
        let dim = ds.dim();
        let mut buf = [0.0f64; BLOCK_ROWS];
        for (b, chunk) in ds.as_flat().chunks(BLOCK_ROWS * dim).enumerate() {
            let rows = chunk.len() / dim;
            kernels::dists_to_block(q, chunk, dim, &mut buf[..rows]);
            for (j, &d2) in buf[..rows].iter().enumerate() {
                if d2 <= eps_sq {
                    out.push(Neighbor::new(b * BLOCK_ROWS + j, Euclidean.surrogate_to_dist(d2)));
                }
            }
        }
        db_obs::counter!("spatial.range_queries").incr();
        db_obs::counter!("spatial.dist_evals").add(self.n as u64);
        db_obs::counter!("spatial.sqrt_evals").add(out.len() as u64);
        sort_neighbors(out);
    }

    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        assert_eq!(ds.len(), self.n, "index/dataset mismatch");
        out.clear();
        if k == 0 {
            return;
        }
        // Collect all squared distances block by block, partially select
        // the k smallest, and convert only those k to true distances.
        let dim = ds.dim();
        let mut all: Vec<Neighbor> = Vec::with_capacity(self.n);
        let mut buf = [0.0f64; BLOCK_ROWS];
        for (b, chunk) in ds.as_flat().chunks(BLOCK_ROWS * dim).enumerate() {
            let rows = chunk.len() / dim;
            kernels::dists_to_block(q, chunk, dim, &mut buf[..rows]);
            all.extend(
                buf[..rows]
                    .iter()
                    .enumerate()
                    .map(|(j, &d2)| Neighbor::new(b * BLOCK_ROWS + j, d2)),
            );
        }
        let k = k.min(all.len());
        if k == 0 {
            return;
        }
        db_obs::counter!("spatial.knn_queries").incr();
        db_obs::counter!("spatial.dist_evals").add(self.n as u64);
        db_obs::counter!("spatial.sqrt_evals").add(k as u64);
        all.select_nth_unstable_by(k - 1, |a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
        all.truncate(k);
        for n in &mut all {
            n.dist = Euclidean.surrogate_to_dist(n.dist);
        }
        sort_neighbors(&mut all);
        out.extend_from_slice(&all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0]]).unwrap()
    }

    #[test]
    fn range_inclusive_boundary() {
        let d = ds();
        let idx = LinearScan::build(&d);
        let mut out = Vec::new();
        idx.range(&d, &[0.0], 2.0, &mut out);
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]); // 2.0 exactly on the boundary is included
        assert!((out[2].dist - 2.0).abs() < 1e-12);
    }

    #[test]
    fn range_empty_when_isolated() {
        let d = ds();
        let idx = LinearScan::build(&d);
        let mut out = vec![Neighbor::new(99, 0.0)];
        idx.range(&d, &[100.0], 1.0, &mut out);
        assert!(out.is_empty()); // out is cleared
    }

    #[test]
    fn knn_returns_sorted_k_nearest() {
        let d = ds();
        let idx = LinearScan::build(&d);
        let mut out = Vec::new();
        idx.knn(&d, &[2.2], 3, &mut out);
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3, 1]);
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn knn_k_zero_and_k_too_large() {
        let d = ds();
        let idx = LinearScan::build(&d);
        let mut out = Vec::new();
        idx.knn(&d, &[0.0], 0, &mut out);
        assert!(out.is_empty());
        idx.knn(&d, &[0.0], 100, &mut out);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn knn_tie_broken_by_lower_id() {
        let d = Dataset::from_rows(1, &[&[1.0], &[-1.0], &[1.0]]).unwrap();
        let idx = LinearScan::build(&d);
        let mut out = Vec::new();
        idx.knn(&d, &[0.0], 2, &mut out);
        let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1]); // all at distance 1; ids 0 and 1 win over 2
    }

    #[test]
    fn nearest_on_empty_dataset() {
        let d = Dataset::new(2).unwrap();
        let idx = LinearScan::build(&d);
        assert!(idx.nearest(&d, &[0.0, 0.0]).is_none());
        assert!(idx.is_empty());
    }
}
