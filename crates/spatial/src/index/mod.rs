//! Spatial indexes answering ε-range and k-NN queries over a [`Dataset`].
//!
//! Indexes store only point *indices*; the dataset is passed by reference at
//! query time. All implementations return exactly the same result sets (ties
//! in k-NN are broken by lower point id), which the test-suite checks by
//! property testing against [`linear::LinearScan`].

use crate::dataset::Dataset;

pub mod balltree;
pub mod grid;
pub mod kdtree;
pub mod linear;

/// One query result: a point id together with its distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the point in the dataset.
    pub id: usize,
    /// Euclidean distance to the query point.
    pub dist: f64,
}

impl Neighbor {
    /// Creates a neighbor record.
    #[inline]
    pub fn new(id: usize, dist: f64) -> Self {
        Self { id, dist }
    }
}

/// Sorts neighbours by `(dist, id)` — the canonical result order.
pub(crate) fn sort_neighbors(out: &mut [Neighbor]) {
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
}

/// An index over the points of one dataset, answering Euclidean proximity
/// queries.
///
/// The dataset passed to the query methods must be the dataset the index was
/// built from (same length, same order); this is asserted where cheap.
pub trait SpatialIndex {
    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index contains no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All points within distance `eps` of `q` (inclusive), appended to
    /// `out` sorted by `(dist, id)`. `out` is cleared first.
    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>);

    /// The `k` nearest points to `q`, appended to `out` sorted by
    /// `(dist, id)`. Fewer than `k` results are returned when the dataset is
    /// smaller. `out` is cleared first. Ties at the `k`-th distance are
    /// broken by lower id.
    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>);

    /// The single nearest point to `q`, or `None` on an empty index.
    fn nearest(&self, ds: &Dataset, q: &[f64]) -> Option<Neighbor> {
        let mut out = Vec::with_capacity(1);
        self.knn(ds, q, 1, &mut out);
        out.first().copied()
    }
}

/// A runtime-selected index, so pipeline code can hold "some index" without
/// generics leaking everywhere.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// Exhaustive scan.
    Linear(linear::LinearScan),
    /// KD-tree.
    KdTree(kdtree::KdTree),
    /// Ball tree.
    BallTree(balltree::BallTree),
    /// Uniform grid.
    Grid(grid::GridIndex),
}

impl SpatialIndex for AnyIndex {
    fn len(&self) -> usize {
        match self {
            AnyIndex::Linear(i) => i.len(),
            AnyIndex::KdTree(i) => i.len(),
            AnyIndex::BallTree(i) => i.len(),
            AnyIndex::Grid(i) => i.len(),
        }
    }

    fn range(&self, ds: &Dataset, q: &[f64], eps: f64, out: &mut Vec<Neighbor>) {
        match self {
            AnyIndex::Linear(i) => i.range(ds, q, eps, out),
            AnyIndex::KdTree(i) => i.range(ds, q, eps, out),
            AnyIndex::BallTree(i) => i.range(ds, q, eps, out),
            AnyIndex::Grid(i) => i.range(ds, q, eps, out),
        }
    }

    fn knn(&self, ds: &Dataset, q: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        match self {
            AnyIndex::Linear(i) => i.knn(ds, q, k, out),
            AnyIndex::KdTree(i) => i.knn(ds, q, k, out),
            AnyIndex::BallTree(i) => i.knn(ds, q, k, out),
            AnyIndex::Grid(i) => i.knn(ds, q, k, out),
        }
    }
}

/// Picks a sensible index for `ds`:
///
/// * tiny datasets (< 64 points) → [`linear::LinearScan`],
/// * low dimensionality (≤ 4) with a usable ε hint → [`grid::GridIndex`]
///   with cell width `eps_hint`,
/// * moderate dimensionality (≤ 8) → [`kdtree::KdTree`],
/// * otherwise → [`balltree::BallTree`] (spheres prune better than slabs
///   in higher dimensions).
///
/// `eps_hint` should be the ε used for subsequent range queries (OPTICS'
/// generating distance); pass `None` when unknown.
pub fn auto_index(ds: &Dataset, eps_hint: Option<f64>) -> AnyIndex {
    if ds.len() < 64 {
        return AnyIndex::Linear(linear::LinearScan::build(ds));
    }
    if ds.dim() <= 4 {
        if let Some(eps) = eps_hint {
            if eps.is_finite() && eps > 0.0 {
                if let Some(g) = grid::GridIndex::build(ds, eps) {
                    return AnyIndex::Grid(g);
                }
            }
        }
    }
    if ds.dim() <= 8 {
        AnyIndex::KdTree(kdtree::KdTree::build(ds))
    } else {
        AnyIndex::BallTree(balltree::BallTree::build(ds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(
            2,
            &[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[10.0, 10.0], &[10.5, 10.0]],
        )
        .unwrap()
    }

    #[test]
    fn neighbor_constructor() {
        let n = Neighbor::new(3, 1.5);
        assert_eq!(n.id, 3);
        assert_eq!(n.dist, 1.5);
    }

    #[test]
    fn sort_neighbors_orders_by_dist_then_id() {
        let mut v = vec![Neighbor::new(2, 1.0), Neighbor::new(1, 1.0), Neighbor::new(0, 0.5)];
        sort_neighbors(&mut v);
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn auto_index_picks_linear_for_tiny() {
        let d = ds();
        assert!(matches!(auto_index(&d, Some(1.0)), AnyIndex::Linear(_)));
    }

    #[test]
    fn auto_index_picks_grid_for_low_dim_with_hint() {
        let mut d = Dataset::new(2).unwrap();
        for i in 0..200 {
            d.push(&[i as f64, (i % 7) as f64]).unwrap();
        }
        assert!(matches!(auto_index(&d, Some(1.0)), AnyIndex::Grid(_)));
        assert!(matches!(auto_index(&d, None), AnyIndex::KdTree(_)));
        assert!(matches!(auto_index(&d, Some(f64::INFINITY)), AnyIndex::KdTree(_)));
    }

    #[test]
    fn auto_index_picks_kdtree_for_moderate_dim() {
        let mut d = Dataset::new(6).unwrap();
        for i in 0..200 {
            d.push(&[i as f64; 6]).unwrap();
        }
        assert!(matches!(auto_index(&d, Some(1.0)), AnyIndex::KdTree(_)));
    }

    #[test]
    fn auto_index_picks_balltree_for_high_dim() {
        let mut d = Dataset::new(9).unwrap();
        for i in 0..200 {
            d.push(&[i as f64; 9]).unwrap();
        }
        assert!(matches!(auto_index(&d, None), AnyIndex::BallTree(_)));
    }

    #[test]
    fn any_index_dispatches_all_variants() {
        let d = ds();
        let variants: Vec<AnyIndex> = vec![
            AnyIndex::Linear(linear::LinearScan::build(&d)),
            AnyIndex::KdTree(kdtree::KdTree::build(&d)),
            AnyIndex::BallTree(balltree::BallTree::build(&d)),
            AnyIndex::Grid(grid::GridIndex::build(&d, 1.5).unwrap()),
        ];
        for idx in &variants {
            assert_eq!(idx.len(), 5);
            assert!(!idx.is_empty());
            let mut out = Vec::new();
            idx.range(&d, &[0.0, 0.0], 1.0, &mut out);
            assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
            idx.knn(&d, &[10.1, 10.0], 1, &mut out);
            assert_eq!(out[0].id, 3);
            assert_eq!(idx.nearest(&d, &[10.6, 10.0]).unwrap().id, 4);
        }
    }
}
