//! Plain-text I/O for datasets: numeric CSV (comma, semicolon, tab or
//! whitespace separated) without external dependencies.
//!
//! This is how real data enters the pipelines — e.g. the actual Corel
//! "Color Moments" file from the UCI KDD archive, whose rows are
//! `<image id> <9 moments>` and can be loaded with `skip_columns = 1`.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::SpatialError;

/// Options for [`read_csv`].
#[derive(Debug, Clone, Default)]
pub struct CsvOptions {
    /// Number of leading columns to skip on every row (ids, labels, …).
    pub skip_columns: usize,
    /// Number of leading lines to skip (headers).
    pub skip_lines: usize,
}

/// Errors of the CSV reader.
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A field failed to parse as `f64`.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// A row had a different number of coordinates than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Expected coordinates per row.
        expected: usize,
        /// Found coordinates.
        got: usize,
    },
    /// A field parsed as `f64` but was NaN or ±∞, which the dataset ingest
    /// boundary rejects (see [`SpatialError::NonFiniteCoordinate`]).
    NonFinite {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// The assembled row was rejected by the [`Dataset`] ingest validation.
    Spatial(SpatialError),
    /// No data rows were found.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::BadNumber { line, field } => {
                write!(f, "line {line}: cannot parse {field:?} as a number")
            }
            CsvError::RaggedRow { line, expected, got } => {
                write!(f, "line {line}: expected {expected} coordinates, found {got}")
            }
            CsvError::NonFinite { line, field } => {
                write!(f, "line {line}: non-finite coordinate {field:?} rejected")
            }
            CsvError::Spatial(e) => write!(f, "dataset rejected input: {e}"),
            CsvError::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<SpatialError> for CsvError {
    fn from(e: SpatialError) -> Self {
        CsvError::Spatial(e)
    }
}

/// Splits a line on commas, semicolons, tabs or runs of spaces.
fn fields(line: &str) -> impl Iterator<Item = &str> {
    line.split([',', ';', '\t', ' ']).filter(|f| !f.trim().is_empty()).map(str::trim)
}

/// Reads a numeric table from `reader`. Empty lines and lines starting
/// with `#` are skipped. The dimensionality is inferred from the first
/// data row.
///
/// # Errors
///
/// Returns an error on I/O failure, unparsable fields, ragged rows or an
/// empty input.
pub fn read_csv_from(reader: impl Read, options: &CsvOptions) -> Result<Dataset, CsvError> {
    let reader = BufReader::new(reader);
    let mut ds: Option<Dataset> = None;
    let mut row: Vec<f64> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx < options.skip_lines {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        row.clear();
        for field in fields(trimmed).skip(options.skip_columns) {
            let v: f64 = field
                .parse()
                .map_err(|_| CsvError::BadNumber { line: idx + 1, field: field.to_string() })?;
            // Rust parses "NaN"/"inf" successfully, but non-finite
            // coordinates poison every distance downstream — reject them
            // here, where the line number is still known (the Dataset
            // ingest boundary would reject them anyway, without the line).
            if !v.is_finite() {
                return Err(CsvError::NonFinite { line: idx + 1, field: field.to_string() });
            }
            row.push(v);
        }
        match &mut ds {
            None => {
                if row.is_empty() {
                    return Err(CsvError::BadNumber {
                        line: idx + 1,
                        field: String::from("<no numeric columns>"),
                    });
                }
                let mut d = Dataset::new(row.len())?;
                d.push(&row)?;
                ds = Some(d);
            }
            Some(d) => {
                if row.len() != d.dim() {
                    return Err(CsvError::RaggedRow {
                        line: idx + 1,
                        expected: d.dim(),
                        got: row.len(),
                    });
                }
                d.push(&row)?;
            }
        }
    }
    ds.ok_or(CsvError::Empty)
}

/// Reads a numeric table from a file. See [`read_csv_from`].
///
/// # Errors
///
/// Returns an error when the file cannot be opened or parsed.
pub fn read_csv(path: impl AsRef<Path>, options: &CsvOptions) -> Result<Dataset, CsvError> {
    read_csv_from(File::open(path)?, options)
}

/// Writes a dataset as comma-separated values (full `f64` round-trip
/// precision).
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_csv_to(ds: &Dataset, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in ds.iter() {
        for (j, x) in p.iter().enumerate() {
            if j > 0 {
                write!(w, ",")?;
            }
            // `{:?}` prints the shortest representation that round-trips.
            write!(w, "{x:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes a dataset to a CSV file. See [`write_csv_to`].
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_csv(ds: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    write_csv_to(ds, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_comma_separated() {
        let input = "1.0,2.0\n3.5,-4.25\n";
        let ds = read_csv_from(input.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(1), &[3.5, -4.25]);
    }

    #[test]
    fn reads_whitespace_and_mixed_separators() {
        let input = "1 2\t3\n4;5, 6\n";
        let ds = read_csv_from(input.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn skips_headers_comments_and_blank_lines() {
        let input = "x,y\n# comment\n\n1,2\n3,4\n";
        let ds = read_csv_from(input.as_bytes(), &CsvOptions { skip_lines: 1, skip_columns: 0 })
            .unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn skip_columns_drops_ids() {
        // Corel-style: id followed by coordinates.
        let input = "1001 0.1 0.2\n1002 0.3 0.4\n";
        let ds = read_csv_from(input.as_bytes(), &CsvOptions { skip_columns: 1, skip_lines: 0 })
            .unwrap();
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.point(0), &[0.1, 0.2]);
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let input = "1,2\n3,oops\n";
        match read_csv_from(input.as_bytes(), &CsvOptions::default()) {
            Err(CsvError::BadNumber { line, field }) => {
                assert_eq!(line, 2);
                assert_eq!(field, "oops");
            }
            other => panic!("expected BadNumber, got {other:?}"),
        }
    }

    #[test]
    fn ragged_row_is_reported() {
        let input = "1,2\n3\n";
        match read_csv_from(input.as_bytes(), &CsvOptions::default()) {
            Err(CsvError::RaggedRow { line, expected, got }) => {
                assert_eq!((line, expected, got), (2, 2, 1));
            }
            other => panic!("expected RaggedRow, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_values_are_rejected() {
        let cases =
            [("1.0,NaN\n", 1), ("inf,2.0\n", 1), ("1.0,-inf\n", 1), ("1.0,2.0\nnan,4.0\n", 2)];
        for (bad, want_line) in cases {
            match read_csv_from(bad.as_bytes(), &CsvOptions::default()) {
                Err(CsvError::NonFinite { line, .. }) => assert_eq!(line, want_line),
                other => panic!("{bad:?} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(
            read_csv_from("".as_bytes(), &CsvOptions::default()),
            Err(CsvError::Empty)
        ));
        assert!(matches!(
            read_csv_from("# only comments\n".as_bytes(), &CsvOptions::default()),
            Err(CsvError::Empty)
        ));
    }

    #[test]
    fn write_read_round_trip() {
        let ds = Dataset::from_rows(3, &[&[1.5, -2.25, 1e-30], &[0.1 + 0.2, 4.0, 5.0]]).unwrap();
        let mut buf = Vec::new();
        write_csv_to(&ds, &mut buf).unwrap();
        let back = read_csv_from(buf.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(back, ds); // exact f64 round-trip via {:?}
    }

    #[test]
    fn file_round_trip() {
        let ds = Dataset::from_rows(2, &[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let path = std::env::temp_dir().join(format!("db-spatial-io-{}.csv", std::process::id()));
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path, &CsvOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ds);
    }

    #[test]
    fn error_display() {
        let e = CsvError::BadNumber { line: 3, field: "x".into() };
        assert!(e.to_string().contains("line 3"));
        let e = CsvError::RaggedRow { line: 2, expected: 3, got: 1 };
        assert!(e.to_string().contains("expected 3"));
        assert!(CsvError::Empty.to_string().contains("no data"));
    }
}
