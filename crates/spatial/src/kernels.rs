//! Batched, cache-blocked squared-Euclidean distance kernels.
//!
//! Every hot path of the reproduction — classification of the whole
//! database against the sampled representatives, the k×k bubble-distance
//! matrix, ε-range queries, and the oracle's brute-force sweeps — reduces
//! to "distances from one point to a block of points". This module is the
//! single place where that arithmetic lives: one-to-many
//! ([`dists_to_block`]), many-to-many tiles ([`dist_tile`]), gathered
//! candidates ([`dists_to_indexed`]) and a tiled 1-NN reduction
//! ([`nn_block`]), all over row-major flat `f64` blocks. The loops are
//! dimension-chunked multi-accumulator code that LLVM auto-vectorizes; no
//! `unsafe`, no external dependencies.
//!
//! # The canonical reduction order
//!
//! Floating-point addition does not associate, so a vectorized sum is a
//! *different function* from the naive left-to-right sum unless the
//! reduction order is pinned. Every kernel here — and, via
//! [`crate::SquaredEuclidean`], every scalar distance in the workspace —
//! computes exactly this function:
//!
//! ```text
//! lane[l] = Σ (a[j] - b[j])²  over j ≡ l (mod LANES), ascending j
//! result  = (lane[0] + lane[1]) + (lane[2] + lane[3])
//! ```
//!
//! [`sq_dist_reference`] is the executable specification of that order
//! (a plain indexed loop); `tests/kernel_equivalence.rs` asserts every
//! kernel equals it **bit for bit** on random dims/lengths/offsets. The
//! order depends only on the two operands and the dimensionality — never
//! on the position of a row inside a block, the tile size, or the thread
//! that computed it — so results are deterministic across thread counts
//! and any chunking of a query set (block-split invariance).
//!
//! For d ≤ 3 the canonical order coincides bit-for-bit with the historic
//! left-to-right loop (the unused high lanes contribute `+0.0`, which is
//! an identity on the non-negative partial sums). For d ≥ 4 it differs by
//! at most the usual reassociation error (≤ 2(d−1) ulp relative, in
//! practice ≤ 1 ulp of the result — see DESIGN.md §13 for the budget).
//!
//! # What the kernels do *not* do
//!
//! They never take square roots (callers compare in squared space and
//! convert only reported results — the surrogate convention), and they
//! never touch metrics counters (callers tally `spatial.dist_evals`
//! etc. in bulk so the inner loops stay free of shared-memory traffic).

/// Number of independent accumulator lanes of the canonical reduction.
pub const LANES: usize = 4;

/// Rows per representative tile of [`nn_block`]: 64 rows × 8 B × d stays
/// inside L1 for the dimensionalities of interest while the per-tile
/// result buffer lives on the stack.
pub const NN_TILE_ROWS: usize = 64;

/// Executable specification of the canonical reduction order: a plain
/// indexed loop any reviewer can check against the module docs. Every
/// other kernel must equal this function bit for bit; the equivalence
/// harness enforces it. Not for production use — [`sq_dist`] is the
/// optimized form.
pub fn sq_dist_reference(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lane = [0.0f64; LANES];
    for j in 0..a.len().min(b.len()) {
        let d = a[j] - b[j];
        lane[j % LANES] += d * d;
    }
    (lane[0] + lane[1]) + (lane[2] + lane[3])
}

/// Squared Euclidean distance between two points in the canonical
/// reduction order. Dispatches to specializations for d ∈ {2, 3, 4} and a
/// dimension-chunked multi-accumulator loop otherwise.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match a.len().min(b.len()) {
        2 => sq2(a[0] - b[0], a[1] - b[1]),
        3 => sq3(a[0] - b[0], a[1] - b[1], a[2] - b[2]),
        4 => sq4(a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]),
        _ => sq_general(a, b),
    }
}

#[inline(always)]
fn sq2(d0: f64, d1: f64) -> f64 {
    // Canonical order for d = 2: lanes 2..4 are zero, and x + 0.0 is an
    // identity on the non-negative sum — identical bits to d0² + d1².
    d0 * d0 + d1 * d1
}

#[inline(always)]
fn sq3(d0: f64, d1: f64, d2: f64) -> f64 {
    (d0 * d0 + d1 * d1) + d2 * d2
}

#[inline(always)]
fn sq4(d0: f64, d1: f64, d2: f64, d3: f64) -> f64 {
    (d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3)
}

/// General-dimension kernel: four independent accumulator chains broken
/// out of the sequential dependency of a naive sum, which is what lets
/// LLVM vectorize the chunked loop (and keeps it fast even unvectorized —
/// the adds pipeline instead of serializing).
fn sq_general(a: &[f64], b: &[f64]) -> f64 {
    let mut lane = [0.0f64; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in ac.by_ref().zip(bc.by_ref()) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lane[l] += d * d;
        }
    }
    for (l, (&x, &y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        let d = x - y;
        lane[l] += d * d;
    }
    (lane[0] + lane[1]) + (lane[2] + lane[3])
}

/// Checks the row-major block invariants shared by the batched kernels.
#[inline]
fn check_block(dim: usize, block_len: usize, out_len: usize) {
    assert!(dim > 0, "dimensionality must be positive");
    assert!(block_len.is_multiple_of(dim), "block is not row-major of dimension {dim}");
    assert_eq!(out_len, block_len / dim, "output length must equal the block's row count");
}

/// One-to-many kernel: squared distances from `q` to every row of the
/// row-major `block`, written to `out` (`out[i]` = row `i`). Each entry is
/// bit-identical to `sq_dist(q, row)` — the result is a pure per-pair
/// function, so any chunking of `block` concatenates to the same bits.
///
/// # Panics
///
/// Panics if `block.len()` is not a multiple of `dim`, `out.len()` is not
/// the row count, or `q.len() != dim`.
pub fn dists_to_block(q: &[f64], block: &[f64], dim: usize, out: &mut [f64]) {
    check_block(dim, block.len(), out.len());
    assert_eq!(q.len(), dim, "query dimensionality mismatch");
    // The dim dispatch is hoisted out of the row loop; the fixed-dim
    // branches index the flat block directly so LLVM can vectorize
    // *across rows* (each output is independent).
    match dim {
        1 => {
            let q0 = q[0];
            for (o, &x) in out.iter_mut().zip(block) {
                let d = q0 - x;
                *o = d * d;
            }
        }
        2 => {
            let (q0, q1) = (q[0], q[1]);
            for (i, o) in out.iter_mut().enumerate() {
                *o = sq2(q0 - block[2 * i], q1 - block[2 * i + 1]);
            }
        }
        3 => {
            let (q0, q1, q2) = (q[0], q[1], q[2]);
            for (i, o) in out.iter_mut().enumerate() {
                *o = sq3(q0 - block[3 * i], q1 - block[3 * i + 1], q2 - block[3 * i + 2]);
            }
        }
        4 => {
            let (q0, q1, q2, q3) = (q[0], q[1], q[2], q[3]);
            for (i, o) in out.iter_mut().enumerate() {
                *o = sq4(
                    q0 - block[4 * i],
                    q1 - block[4 * i + 1],
                    q2 - block[4 * i + 2],
                    q3 - block[4 * i + 3],
                );
            }
        }
        _ => {
            for (o, row) in out.iter_mut().zip(block.chunks_exact(dim)) {
                *o = sq_general(q, row);
            }
        }
    }
}

/// Many-to-many tile kernel: `out[i * nb + j]` = squared distance from row
/// `i` of `a` to row `j` of `b` (`nb` = rows of `b`). Callers tile `b` to
/// their cache budget; every entry is bit-identical to `sq_dist` on the
/// pair, so tiling cannot change results.
///
/// # Panics
///
/// Panics if either block is not row-major of dimension `dim` or
/// `out.len() != rows(a) * rows(b)`.
pub fn dist_tile(a: &[f64], b: &[f64], dim: usize, out: &mut [f64]) {
    assert!(dim > 0, "dimensionality must be positive");
    assert!(a.len().is_multiple_of(dim), "tile a is not row-major of dimension {dim}");
    assert!(b.len().is_multiple_of(dim), "tile b is not row-major of dimension {dim}");
    let nb = b.len() / dim;
    assert_eq!(out.len(), (a.len() / dim) * nb, "output length must be rows(a) * rows(b)");
    for (row, o) in a.chunks_exact(dim).zip(out.chunks_exact_mut(nb.max(1))) {
        dists_to_block(row, b, dim, o);
    }
}

/// Gathered one-to-many kernel: squared distances from `q` to the points
/// `ids` of the row-major `flat` buffer (`out[i]` = point `ids[i]`). The
/// dimension dispatch is hoisted out of the gather loop, so candidate
/// lists from cell or leaf enumeration pay it once per batch instead of
/// once per pair. Bit-identical to `sq_dist` per pair.
///
/// # Panics
///
/// Panics if `out.len() != ids.len()`, `q.len() != dim`, or an id is out
/// of range of `flat`.
pub fn dists_to_indexed(q: &[f64], flat: &[f64], dim: usize, ids: &[u32], out: &mut [f64]) {
    assert!(dim > 0, "dimensionality must be positive");
    assert_eq!(q.len(), dim, "query dimensionality mismatch");
    assert_eq!(out.len(), ids.len(), "output length must equal the candidate count");
    let row = |id: u32| &flat[id as usize * dim..id as usize * dim + dim];
    match dim {
        2 => {
            let (q0, q1) = (q[0], q[1]);
            for (o, &id) in out.iter_mut().zip(ids) {
                let p = row(id);
                *o = sq2(q0 - p[0], q1 - p[1]);
            }
        }
        3 => {
            let (q0, q1, q2) = (q[0], q[1], q[2]);
            for (o, &id) in out.iter_mut().zip(ids) {
                let p = row(id);
                *o = sq3(q0 - p[0], q1 - p[1], q2 - p[2]);
            }
        }
        4 => {
            let (q0, q1, q2, q3) = (q[0], q[1], q[2], q[3]);
            for (o, &id) in out.iter_mut().zip(ids) {
                let p = row(id);
                *o = sq4(q0 - p[0], q1 - p[1], q2 - p[2], q3 - p[3]);
            }
        }
        _ => {
            for (o, &id) in out.iter_mut().zip(ids) {
                *o = sq_general(q, row(id));
            }
        }
    }
}

/// Tiled 1-NN reduction: for every row of `queries`, the index (into
/// `reps` rows) and squared distance of its nearest representative, ties
/// broken toward the lower index. Representatives are scanned in
/// [`NN_TILE_ROWS`]-row tiles so a tile's coordinates stay cache-hot
/// across the query block; the scan order per query is always ascending
/// rep index, so the winner is independent of the tiling and of how the
/// caller chunks the query set.
///
/// # Panics
///
/// Panics if either block is not row-major of dimension `dim`, `reps` is
/// empty, the output slices differ from the query row count, or `reps`
/// has more than `u32::MAX` rows.
pub fn nn_block(
    queries: &[f64],
    reps: &[f64],
    dim: usize,
    best_id: &mut [u32],
    best_d2: &mut [f64],
) {
    assert!(dim > 0, "dimensionality must be positive");
    assert!(queries.len().is_multiple_of(dim), "queries not row-major of dimension {dim}");
    assert!(reps.len().is_multiple_of(dim), "reps not row-major of dimension {dim}");
    let nr = reps.len() / dim;
    assert!(nr > 0, "cannot classify against an empty representative block");
    assert!(nr <= u32::MAX as usize, "representative ids exceed u32");
    let nq = queries.len() / dim;
    assert_eq!(best_id.len(), nq, "best_id length must equal the query row count");
    assert_eq!(best_d2.len(), nq, "best_d2 length must equal the query row count");

    best_d2.fill(f64::INFINITY);
    best_id.fill(0);
    let mut buf = [0.0f64; NN_TILE_ROWS];
    for (t, tile) in reps.chunks(NN_TILE_ROWS * dim).enumerate() {
        let rows = tile.len() / dim;
        let base = (t * NN_TILE_ROWS) as u32;
        for (qi, q) in queries.chunks_exact(dim).enumerate() {
            dists_to_block(q, tile, dim, &mut buf[..rows]);
            let (mut bd, mut bi) = (best_d2[qi], best_id[qi]);
            for (j, &d2) in buf[..rows].iter().enumerate() {
                // Strict `<` keeps the earliest (lowest-id) minimum —
                // the repo-wide `(dist, id)` tie-break.
                if d2 < bd {
                    bd = d2;
                    bi = base + j as u32;
                }
            }
            best_d2[qi] = bd;
            best_id[qi] = bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(points: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut s = seed | 1;
        (0..points * dim)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn matches_reference_bitwise_across_dims() {
        for dim in 1..=19 {
            let a = pseudo(1, dim, 3 * dim as u64 + 1);
            let b = pseudo(1, dim, 7 * dim as u64 + 5);
            assert_eq!(
                sq_dist(&a, &b).to_bits(),
                sq_dist_reference(&a, &b).to_bits(),
                "dim = {dim}"
            );
        }
    }

    #[test]
    fn low_dims_match_historic_left_to_right_sum() {
        // For d <= 3 the canonical order degenerates to the plain
        // sequential sum the repo used before the kernel layer existed.
        for dim in 1..=3 {
            let a = pseudo(1, dim, 11);
            let b = pseudo(1, dim, 13);
            let naive: f64 = a.iter().zip(&b).map(|(&x, &y)| (x - y) * (x - y)).sum();
            assert_eq!(sq_dist(&a, &b).to_bits(), naive.to_bits(), "dim = {dim}");
        }
    }

    #[test]
    fn block_kernel_equals_per_pair_calls() {
        for dim in [1usize, 2, 3, 4, 7, 12] {
            let q = pseudo(1, dim, 17);
            let block = pseudo(100, dim, 23 + dim as u64);
            let mut out = vec![0.0; 100];
            dists_to_block(&q, &block, dim, &mut out);
            for (i, row) in block.chunks_exact(dim).enumerate() {
                assert_eq!(out[i].to_bits(), sq_dist(&q, row).to_bits(), "dim {dim} row {i}");
            }
        }
    }

    #[test]
    fn tile_and_indexed_kernels_agree_with_block() {
        for dim in [2usize, 3, 4, 9] {
            let a = pseudo(7, dim, 29);
            let b = pseudo(33, dim, 31);
            let mut tile = vec![0.0; 7 * 33];
            dist_tile(&a, &b, dim, &mut tile);
            let ids: Vec<u32> = (0..33).rev().collect();
            let mut gathered = vec![0.0; 33];
            for (i, q) in a.chunks_exact(dim).enumerate() {
                let mut row = vec![0.0; 33];
                dists_to_block(q, &b, dim, &mut row);
                assert_eq!(&tile[i * 33..(i + 1) * 33], &row[..], "dim {dim} row {i}");
                dists_to_indexed(q, &b, dim, &ids, &mut gathered);
                for (g, &id) in gathered.iter().zip(&ids) {
                    assert_eq!(g.to_bits(), row[id as usize].to_bits());
                }
            }
        }
    }

    #[test]
    fn nn_block_picks_lowest_id_on_ties() {
        // Three identical reps: every query must classify to rep 0.
        let reps = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let queries = pseudo(10, 2, 37);
        let mut ids = vec![99u32; 10];
        let mut d2 = vec![0.0; 10];
        nn_block(&queries, &reps, 2, &mut ids, &mut d2);
        assert!(ids.iter().all(|&i| i == 0), "ids = {ids:?}");
    }

    #[test]
    fn nn_block_is_tile_boundary_exact() {
        // More reps than one tile: the reduction must cross tile borders
        // without disturbing the ascending-id scan order.
        let dim = 3;
        let reps = pseudo(NN_TILE_ROWS * 2 + 17, dim, 41);
        let queries = pseudo(50, dim, 43);
        let mut ids = vec![0u32; 50];
        let mut d2 = vec![0.0; 50];
        nn_block(&queries, &reps, dim, &mut ids, &mut d2);
        for (qi, q) in queries.chunks_exact(dim).enumerate() {
            let mut all = vec![0.0; reps.len() / dim];
            dists_to_block(q, &reps, dim, &mut all);
            let (mut bi, mut bd) = (0u32, f64::INFINITY);
            for (j, &d) in all.iter().enumerate() {
                if d < bd {
                    bd = d;
                    bi = j as u32;
                }
            }
            assert_eq!((ids[qi], d2[qi].to_bits()), (bi, bd.to_bits()), "query {qi}");
        }
    }

    #[test]
    #[should_panic(expected = "row-major")]
    fn ragged_block_panics() {
        let mut out = [0.0; 1];
        dists_to_block(&[0.0, 0.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "empty representative block")]
    fn nn_block_empty_reps_panics() {
        let (mut ids, mut d2) = ([0u32; 1], [0.0f64; 1]);
        nn_block(&[0.0, 0.0], &[], 2, &mut ids, &mut d2);
    }
}
