//! Dense vector datasets, distance metrics and spatial indexes.
//!
//! This crate is the spatial substrate of the Data Bubbles reproduction:
//!
//! * [`Dataset`] — a flat, row-major container of `d`-dimensional `f64`
//!   points. All higher layers (OPTICS, BIRCH, sampling, Data Bubbles)
//!   operate on datasets or on summaries derived from them.
//! * [`Metric`] — distance functions ([`Euclidean`], [`SquaredEuclidean`],
//!   [`Manhattan`], [`Chebyshev`]).
//! * [`kernels`] — batched, cache-blocked squared-distance kernels with a
//!   fixed lane-reduction order; the canonical distance arithmetic every
//!   index, classifier and oracle sweep shares (see DESIGN.md §13).
//! * [`SpatialIndex`] — ε-range, k-NN and 1-NN queries. Three
//!   implementations with identical semantics: [`LinearScan`] (the always
//!   correct baseline), [`KdTree`] (good for moderate dimensions) and
//!   [`GridIndex`] (fastest for low-dimensional, density-based workloads —
//!   the "index-based access structure" OPTICS assumes).
//!
//! # Example
//!
//! ```
//! use db_spatial::{Dataset, KdTree, SpatialIndex};
//!
//! let ds = Dataset::from_rows(2, &[&[0.0, 0.0], &[1.0, 0.0], &[5.0, 5.0]]).unwrap();
//! let tree = KdTree::build(&ds);
//! let mut out = Vec::new();
//! tree.range(&ds, &[0.1, 0.0], 2.0, &mut out);
//! let ids: Vec<usize> = out.iter().map(|n| n.id).collect();
//! assert_eq!(ids.len(), 2);
//! assert!(ids.contains(&0) && ids.contains(&1));
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
pub mod id;
pub mod io;
pub mod kernels;
mod metric;
pub mod order;
pub mod vptree;

pub mod index;

pub use dataset::Dataset;
pub use error::SpatialError;
pub use id::{checked_id, id_u32};
pub use index::balltree::BallTree;
pub use index::grid::GridIndex;
pub use index::kdtree::KdTree;
pub use index::linear::LinearScan;
pub use index::{auto_index, AnyIndex, Neighbor, SpatialIndex};
pub use io::{read_csv, read_csv_from, write_csv, write_csv_to, CsvError, CsvOptions};
pub use kernels::{dist_tile, dists_to_block, dists_to_indexed, nn_block};
pub use metric::{Chebyshev, Euclidean, Manhattan, Metric, SquaredEuclidean};
pub use order::DistId;
pub use vptree::{MetricNeighbor, VpTree};

/// Euclidean distance between two slices of equal length.
///
/// Convenience free function used pervasively by the higher layers.
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    Euclidean.dist(a, b)
}

/// Squared Euclidean distance between two slices of equal length.
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    SquaredEuclidean.dist(a, b)
}
