/// A distance function on `d`-dimensional points.
///
/// Implementations must satisfy the metric axioms except that
/// [`SquaredEuclidean`] intentionally violates the triangle inequality (it
/// is provided because comparisons of squared distances avoid `sqrt` in hot
/// loops; the orderings are identical).
pub trait Metric {
    /// Distance between `a` and `b`.
    ///
    /// # Panics
    ///
    /// May panic (in debug builds) if `a.len() != b.len()`.
    fn dist(&self, a: &[f64], b: &[f64]) -> f64;

    /// A monotone surrogate of the distance, cheaper to compute when
    /// available. Only relative order is guaranteed; defaults to `dist`.
    #[inline]
    fn dist_surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        self.dist(a, b)
    }

    /// Converts a surrogate value back into a true distance.
    #[inline]
    fn surrogate_to_dist(&self, s: f64) -> f64 {
        s
    }
}

/// The Euclidean (L2) metric. The metric of the paper's evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl Metric for Euclidean {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        SquaredEuclidean.dist(a, b).sqrt()
    }

    #[inline]
    fn dist_surrogate(&self, a: &[f64], b: &[f64]) -> f64 {
        SquaredEuclidean.dist(a, b)
    }

    #[inline]
    fn surrogate_to_dist(&self, s: f64) -> f64 {
        s.sqrt()
    }
}

/// Squared Euclidean "distance" (not a metric; monotone in L2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SquaredEuclidean;

impl Metric for SquaredEuclidean {
    /// Delegates to [`crate::kernels::sq_dist`], the canonical fixed
    /// lane-reduction kernel, so every scalar call site in the workspace
    /// produces bit-for-bit the same value as the batched block kernels.
    /// (For d ≤ 3 this is also bit-identical to the historic
    /// left-to-right loop; see `crate::kernels` for the contract.)
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        crate::kernels::sq_dist(a, b)
    }
}

/// The Manhattan (L1) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl Metric for Manhattan {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
    }
}

/// The Chebyshev (L∞) metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric for Chebyshev {
    #[inline]
    fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        // `f64::max` returns the other operand when one side is NaN, so a
        // `fold(0.0, f64::max)` silently drops NaN lanes and reports a
        // finite distance for garbage input. Propagate NaN instead: a NaN
        // coordinate must poison the distance, as it does for the L1 and
        // L2 metrics (whose sums propagate NaN natively).
        a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, |acc, d| {
            if acc.is_nan() || d.is_nan() {
                f64::NAN
            } else {
                acc.max(d)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((Euclidean.dist(&A, &B) - 5.0).abs() < 1e-12);
        assert_eq!(Euclidean.dist(&A, &A), 0.0);
    }

    #[test]
    fn squared_euclidean_is_square_of_euclidean() {
        let d = Euclidean.dist(&A, &B);
        let s = SquaredEuclidean.dist(&A, &B);
        assert!((s - d * d).abs() < 1e-9);
    }

    #[test]
    fn surrogate_round_trips() {
        let s = Euclidean.dist_surrogate(&A, &B);
        assert!((Euclidean.surrogate_to_dist(s) - 5.0).abs() < 1e-12);
        // Default surrogate is identity.
        let m = Manhattan.dist_surrogate(&A, &B);
        assert_eq!(Manhattan.surrogate_to_dist(m), m);
    }

    #[test]
    fn manhattan_and_chebyshev() {
        assert!((Manhattan.dist(&A, &B) - 7.0).abs() < 1e-12);
        assert!((Chebyshev.dist(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_symmetric() {
        assert_eq!(Euclidean.dist(&A, &B), Euclidean.dist(&B, &A));
        assert_eq!(Manhattan.dist(&A, &B), Manhattan.dist(&B, &A));
        assert_eq!(Chebyshev.dist(&A, &B), Chebyshev.dist(&B, &A));
    }

    #[test]
    fn chebyshev_propagates_nan() {
        let nan = [1.0, f64::NAN, 3.0];
        assert!(Chebyshev.dist(&A, &nan).is_nan());
        assert!(Chebyshev.dist(&nan, &A).is_nan());
        // NaN in a non-final lane must not be absorbed by a later max.
        let early = [f64::NAN, 2.0, 3.0];
        assert!(Chebyshev.dist(&A, &early).is_nan());
        // The other metrics already propagate; pin that too.
        assert!(Euclidean.dist(&A, &nan).is_nan());
        assert!(Manhattan.dist(&A, &nan).is_nan());
    }

    #[test]
    fn squared_euclidean_matches_kernel_bitwise() {
        let a: Vec<f64> = (0..9).map(|i| i as f64 * 0.37 + 0.1).collect();
        let b: Vec<f64> = (0..9).map(|i| i as f64 * -0.53 + 2.0).collect();
        for d in 1..=9 {
            let s = SquaredEuclidean.dist(&a[..d], &b[..d]);
            let k = crate::kernels::sq_dist_reference(&a[..d], &b[..d]);
            assert_eq!(s.to_bits(), k.to_bits(), "d = {d}");
        }
    }

    #[test]
    fn norm_ordering_l1_ge_l2_ge_linf() {
        let l1 = Manhattan.dist(&A, &B);
        let l2 = Euclidean.dist(&A, &B);
        let li = Chebyshev.dist(&A, &B);
        assert!(l1 >= l2 && l2 >= li);
    }
}
