//! The shared total-order helper for `(distance, id)` pairs.
//!
//! Three hot paths — the OPTICS seed list, the kd-tree k-NN frontier,
//! and the ball-tree k-NN frontier — each used to carry a private
//! `struct Seed(f64, usize)` / `struct Cand(f64, usize)` with a
//! hand-rolled `Ord`. Three copies of the same subtle code is three
//! places for the NaN-total-ordering convention (PR 2) to silently
//! regress, so the ordering lives here once, and the `total-cmp` audit
//! rule bans `partial_cmp` everywhere else.
//!
//! The order is `f64::total_cmp` on the distance, then `usize` id as the
//! tie-breaker — the exact ordering every consumer already relied on:
//! deterministic under ties (ids are unique) and total under adversarial
//! inputs (`NaN` sorts above `+∞`, `-0.0` below `+0.0`, so heaps and
//! sorts never see `Ordering::Equal` lies or panic on `None`).

/// A `(distance, id)` pair with a *total* order: `total_cmp` on the
/// distance, then the id. Usable directly in `BinaryHeap` (max-heap; wrap
/// in `std::cmp::Reverse` for min-heaps) and in `sort`/`sort_unstable`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistId(pub f64, pub usize);

impl Eq for DistId {}

impl PartialOrd for DistId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DistId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn nan_and_negative_zero_have_a_total_order() {
        // total_cmp's IEEE 754 totalOrder: -NaN < -inf < -0.0 < +0.0 < +inf < +NaN.
        assert_eq!(DistId(-0.0, 0).cmp(&DistId(0.0, 0)), Ordering::Less);
        assert_eq!(DistId(f64::NAN, 0).cmp(&DistId(f64::INFINITY, 0)), Ordering::Greater);
        assert_eq!(DistId(-f64::NAN, 0).cmp(&DistId(f64::NEG_INFINITY, 0)), Ordering::Less);
        // Reflexivity on NaN — the property partial_cmp cannot give.
        assert_eq!(DistId(f64::NAN, 7).cmp(&DistId(f64::NAN, 7)), Ordering::Equal);
        assert_eq!(DistId(f64::NAN, 7).partial_cmp(&DistId(f64::NAN, 7)), Some(Ordering::Equal));
    }

    #[test]
    fn ties_break_by_id_and_heaps_are_deterministic() {
        assert_eq!(DistId(1.0, 3).cmp(&DistId(1.0, 9)), Ordering::Less);
        let mut v = [DistId(1.0, 2), DistId(f64::NAN, 0), DistId(1.0, 1), DistId(-0.0, 5)];
        v.sort_unstable();
        let ids: Vec<usize> = v.iter().map(|d| d.1).collect();
        assert_eq!(ids, vec![5, 1, 2, 0]);

        let mut heap = std::collections::BinaryHeap::new();
        for d in [DistId(2.0, 1), DistId(f64::NAN, 4), DistId(2.0, 0)] {
            heap.push(std::cmp::Reverse(d));
        }
        // Min-heap pops ties in id order and NaN last.
        assert_eq!(heap.pop().map(|r| r.0 .1), Some(0));
        assert_eq!(heap.pop().map(|r| r.0 .1), Some(1));
        assert_eq!(heap.pop().map(|r| r.0 .1), Some(4));
    }
}
