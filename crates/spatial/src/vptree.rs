//! A vantage-point tree: nearest-neighbour and range queries under an
//! **arbitrary metric**, given only a distance closure over object ids.
//!
//! This is the index the metric-data extension of the Data Bubbles paper
//! (§10) needs: classification of `n` objects against `k` sampled
//! representatives costs O(n·k) distance evaluations with a linear scan
//! but only ~O(n·log k) with a VP-tree over the representatives — and
//! distance evaluations (edit distances, kernel evaluations, …) are the
//! expensive unit in metric spaces.
//!
//! The tree stores object *ids*; all geometry flows through the provided
//! closure, which must be a metric (symmetry + triangle inequality —
//! pruning is unsound otherwise). Floating-point *rounding* of a true
//! metric is tolerated: pruning bounds carry a small relative slack
//! ([`PRUNE_SLACK`]) so triangle-inequality violations of a few ulps —
//! inevitable when distances are `fl(√Σd²)` from the coordinate kernels —
//! never drop a true result. `tests/vptree_ulp.rs` pins this.

/// One query result: object id + distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricNeighbor {
    /// The object id.
    pub id: usize,
    /// Distance to the query.
    pub dist: f64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        ids: Vec<usize>,
    },
    Inner {
        vantage: usize,
        /// Median distance from the vantage point: the inside/outside split.
        radius: f64,
        /// Child covering `d(vantage, ·) <= radius`.
        inside: usize,
        /// Child covering `d(vantage, ·) > radius`.
        outside: usize,
    },
}

const LEAF_SIZE: usize = 8;

/// Relative pruning slack. A closure that returns *rounded* distances of
/// a true metric (e.g. `fl(√Σd²)` Euclidean) can violate the triangle
/// inequality by a few ulps, which makes exact-arithmetic pruning drop
/// points sitting precisely on a query boundary. Every prune test is
/// therefore widened by `PRUNE_SLACK × (sum of the magnitudes involved)`
/// — enough for correctly rounded metrics up to a few hundred dimensions.
/// Widening is always sound: it only admits extra node visits, and the
/// exhaustive leaf/vantage predicates decide actual membership.
const PRUNE_SLACK: f64 = 32.0 * f64::EPSILON;

/// A vantage-point tree over object ids `0..n`.
///
/// ```
/// use db_spatial::VpTree;
/// let words = ["cat", "car", "dragonfly"];
/// let dist = |a: usize, b: usize| {
///     // toy metric: absolute length difference
///     (words[a].len() as f64 - words[b].len() as f64).abs()
/// };
/// let tree = VpTree::build(words.len(), &dist);
/// // Nearest word to a query of length 4:
/// let nn = tree.nearest(&|id| (words[id].len() as f64 - 4.0).abs()).unwrap();
/// assert_eq!(words[nn.id], "cat"); // ties break toward lower ids
/// ```
#[derive(Debug, Clone)]
pub struct VpTree {
    nodes: Vec<Node>,
    root: usize,
    n: usize,
}

impl VpTree {
    /// Builds the tree over `n` objects with the given metric. Costs
    /// O(n log n) distance evaluations (deterministic vantage choice).
    pub fn build(n: usize, dist: &impl Fn(usize, usize) -> f64) -> Self {
        let mut nodes = Vec::new();
        let ids: Vec<usize> = (0..n).collect();
        let root = build_rec(&mut nodes, ids, dist);
        Self { nodes, root, n }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The nearest indexed object to the query. The query is described
    /// only by its distance to indexed objects (`dq(id)`), so callers can
    /// search for objects *outside* the indexed set.
    pub fn nearest(&self, dq: &impl Fn(usize) -> f64) -> Option<MetricNeighbor> {
        if self.n == 0 {
            return None;
        }
        let mut best = MetricNeighbor { id: usize::MAX, dist: f64::INFINITY };
        self.search(self.root, dq, &mut best);
        (best.id != usize::MAX).then_some(best)
    }

    fn search(&self, node: usize, dq: &impl Fn(usize) -> f64, best: &mut MetricNeighbor) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &id in ids {
                    let d = dq(id);
                    if d < best.dist || (d == best.dist && id < best.id) {
                        *best = MetricNeighbor { id, dist: d };
                    }
                }
            }
            Node::Inner { vantage, radius, inside, outside } => {
                let d = dq(*vantage);
                if d < best.dist || (d == best.dist && *vantage < best.id) {
                    *best = MetricNeighbor { id: *vantage, dist: d };
                }
                // Visit the more promising side first; prune with the
                // triangle inequality.
                let (first, second) =
                    if d <= *radius { (*inside, *outside) } else { (*outside, *inside) };
                self.search(first, dq, best);
                let boundary_gap = (d - radius).abs();
                let slack = PRUNE_SLACK * (d + radius + best.dist);
                if boundary_gap <= best.dist + slack {
                    self.search(second, dq, best);
                }
            }
        }
    }

    /// All indexed objects within `eps` of the query, sorted by
    /// `(dist, id)`.
    pub fn range(&self, dq: &impl Fn(usize) -> f64, eps: f64, out: &mut Vec<MetricNeighbor>) {
        out.clear();
        if self.n == 0 || eps.is_nan() || eps < 0.0 {
            return;
        }
        self.range_rec(self.root, dq, eps, out);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn range_rec(
        &self,
        node: usize,
        dq: &impl Fn(usize) -> f64,
        eps: f64,
        out: &mut Vec<MetricNeighbor>,
    ) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &id in ids {
                    let d = dq(id);
                    if d <= eps {
                        out.push(MetricNeighbor { id, dist: d });
                    }
                }
            }
            Node::Inner { vantage, radius, inside, outside } => {
                let d = dq(*vantage);
                if d <= eps {
                    out.push(MetricNeighbor { id: *vantage, dist: d });
                }
                let slack = PRUNE_SLACK * (d + eps + *radius);
                if d - eps <= *radius + slack {
                    self.range_rec(*inside, dq, eps, out);
                }
                if d + eps > *radius - slack {
                    self.range_rec(*outside, dq, eps, out);
                }
            }
        }
    }
}

fn build_rec(
    nodes: &mut Vec<Node>,
    mut ids: Vec<usize>,
    dist: &impl Fn(usize, usize) -> f64,
) -> usize {
    if ids.len() <= LEAF_SIZE {
        nodes.push(Node::Leaf { ids });
        return nodes.len() - 1;
    }
    // Deterministic vantage: the first id (ids arrive in arbitrary but
    // deterministic order from the parent split).
    let vantage = ids[0];
    let rest = ids.split_off(1);
    let mut with_d: Vec<(usize, f64)> =
        rest.into_iter().map(|id| (id, dist(vantage, id))).collect();
    let mid = with_d.len() / 2;
    with_d.select_nth_unstable_by(mid, |a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let radius = with_d[mid].1;
    // `select_nth` guarantees ≤ before mid; the element at mid defines the
    // radius and goes inside, so both children are non-empty.
    let mut inside_ids = Vec::with_capacity(mid + 1);
    let mut outside_ids = Vec::with_capacity(with_d.len() - mid);
    for (id, d) in with_d {
        if d <= radius {
            inside_ids.push(id);
        } else {
            outside_ids.push(id);
        }
    }
    if outside_ids.is_empty() {
        // Degenerate (many ties at the radius): fall back to a leaf to
        // guarantee termination.
        inside_ids.push(vantage);
        nodes.push(Node::Leaf { ids: inside_ids });
        return nodes.len() - 1;
    }
    let inside = build_rec(nodes, inside_ids, dist);
    let outside = build_rec(nodes, outside_ids, dist);
    nodes.push(Node::Inner { vantage, radius, inside, outside });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_metric(xs: &[f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |a, b| (xs[a] - xs[b]).abs()
    }

    fn positions(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 2654435761) % 10_000) as f64 / 100.0).collect()
    }

    #[test]
    fn nearest_matches_linear_scan() {
        let xs = positions(500);
        let dist = line_metric(&xs);
        let tree = VpTree::build(xs.len(), &dist);
        for q in [0.0f64, 3.7, 55.5, 99.99, -10.0, 200.0] {
            let dq = |id: usize| (xs[id] - q).abs();
            let got = tree.nearest(&dq).unwrap();
            let want = (0..xs.len())
                .map(|id| MetricNeighbor { id, dist: (xs[id] - q).abs() })
                .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
                .unwrap();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let xs = positions(300);
        let dist = line_metric(&xs);
        let tree = VpTree::build(xs.len(), &dist);
        let mut out = Vec::new();
        for q in [10.0f64, 42.0, 77.7] {
            for eps in [0.0f64, 1.0, 10.0, 1000.0] {
                let dq = |id: usize| (xs[id] - q).abs();
                tree.range(&dq, eps, &mut out);
                let mut want: Vec<MetricNeighbor> = (0..xs.len())
                    .map(|id| MetricNeighbor { id, dist: (xs[id] - q).abs() })
                    .filter(|n| n.dist <= eps)
                    .collect();
                want.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
                assert_eq!(out, want, "q={q} eps={eps}");
            }
        }
    }

    #[test]
    fn duplicate_points_are_handled() {
        let xs = vec![5.0; 100];
        let dist = line_metric(&xs);
        let tree = VpTree::build(xs.len(), &dist);
        let dq = |id: usize| (xs[id] - 5.0).abs();
        assert_eq!(tree.nearest(&dq).unwrap().id, 0); // lowest id wins ties
        let mut out = Vec::new();
        tree.range(&dq, 0.0, &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_and_singleton() {
        let tree = VpTree::build(0, &|_, _| 0.0);
        assert!(tree.is_empty());
        assert!(tree.nearest(&|_| 0.0).is_none());

        let tree = VpTree::build(1, &|_, _| 0.0);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.nearest(&|_| 3.0).unwrap(), MetricNeighbor { id: 0, dist: 3.0 });
    }

    #[test]
    fn works_in_two_dimensions() {
        let pts: Vec<[f64; 2]> =
            (0..400).map(|i| [((i * 37) % 101) as f64, ((i * 53) % 97) as f64]).collect();
        let dist = |a: usize, b: usize| db_spatial_euclid(&pts[a], &pts[b]);
        fn db_spatial_euclid(a: &[f64; 2], b: &[f64; 2]) -> f64 {
            ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt()
        }
        let tree = VpTree::build(pts.len(), &dist);
        let q = [50.0, 50.0];
        let dq = |id: usize| ((pts[id][0] - q[0]).powi(2) + (pts[id][1] - q[1]).powi(2)).sqrt();
        let got = tree.nearest(&dq).unwrap();
        let want = (0..pts.len())
            .map(|id| MetricNeighbor { id, dist: dq(id) })
            .min_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)))
            .unwrap();
        assert_eq!(got, want);
    }
}
