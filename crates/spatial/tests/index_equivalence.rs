//! Property tests: KD-tree and grid index return exactly the results of the
//! exhaustive linear scan, for arbitrary data, queries, radii and k.

use db_spatial::{BallTree, Dataset, GridIndex, KdTree, LinearScan, Neighbor, SpatialIndex};
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim), 1..max_n).prop_map(
        move |rows| {
            let mut ds = Dataset::new(dim).unwrap();
            for r in &rows {
                ds.push(r).unwrap();
            }
            ds
        },
    )
}

fn ids(v: &[Neighbor]) -> Vec<usize> {
    v.iter().map(|n| n.id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_range_equals_linear(
        ds in dataset_strategy(120, 3),
        q in prop::collection::vec(-60.0f64..60.0, 3),
        eps in 0.0f64..40.0,
    ) {
        let tree = KdTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn kdtree_knn_equals_linear(
        ds in dataset_strategy(120, 2),
        q in prop::collection::vec(-60.0f64..60.0, 2),
        k in 1usize..20,
    ) {
        let tree = KdTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn balltree_range_equals_linear(
        ds in dataset_strategy(120, 5),
        q in prop::collection::vec(-60.0f64..60.0, 5),
        eps in 0.0f64..40.0,
    ) {
        let tree = BallTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn balltree_knn_equals_linear(
        ds in dataset_strategy(120, 4),
        q in prop::collection::vec(-60.0f64..60.0, 4),
        k in 1usize..20,
    ) {
        let tree = BallTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn grid_range_equals_linear(
        ds in dataset_strategy(120, 2),
        q in prop::collection::vec(-60.0f64..60.0, 2),
        eps in 0.0f64..40.0,
        cell in 0.3f64..10.0,
    ) {
        let grid = GridIndex::build(&ds, cell).unwrap();
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        grid.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn grid_knn_equals_linear(
        ds in dataset_strategy(120, 2),
        q in prop::collection::vec(-60.0f64..60.0, 2),
        k in 1usize..20,
        cell in 0.3f64..10.0,
    ) {
        let grid = GridIndex::build(&ds, cell).unwrap();
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        grid.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        prop_assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn range_distances_are_correct(
        ds in dataset_strategy(80, 2),
        eps in 0.0f64..30.0,
    ) {
        let tree = KdTree::build(&ds);
        let mut out = Vec::new();
        let q = ds.point(0).to_vec();
        tree.range(&ds, &q, eps, &mut out);
        // The query point itself is always in its own eps-neighbourhood.
        prop_assert!(out.iter().any(|n| n.id == 0));
        for n in &out {
            let d = db_spatial::euclidean(&q, ds.point(n.id));
            prop_assert!((d - n.dist).abs() < 1e-9);
            prop_assert!(n.dist <= eps + 1e-12);
        }
        // Sorted by distance.
        prop_assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }
}
