//! Randomized equivalence tests: KD-tree, ball tree and grid index return
//! exactly the results of the exhaustive linear scan, across many seeded
//! random datasets, queries, radii and k.

use db_rng::Rng;
use db_spatial::{BallTree, Dataset, GridIndex, KdTree, LinearScan, Neighbor, SpatialIndex};

const CASES: u64 = 64;

fn random_dataset(rng: &mut Rng, max_n: usize, dim: usize) -> Dataset {
    let n = rng.gen_range(1..max_n);
    let mut ds = Dataset::new(dim).unwrap();
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.gen_f64(-50.0, 50.0);
        }
        ds.push(&row).unwrap();
    }
    ds
}

fn random_query(rng: &mut Rng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.gen_f64(-60.0, 60.0)).collect()
}

fn ids(v: &[Neighbor]) -> Vec<usize> {
    v.iter().map(|n| n.id).collect()
}

#[test]
fn kdtree_range_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let ds = random_dataset(&mut rng, 120, 3);
        let q = random_query(&mut rng, 3);
        let eps = rng.gen_f64(0.0, 40.0);
        let tree = KdTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn kdtree_knn_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(100 + seed);
        let ds = random_dataset(&mut rng, 120, 2);
        let q = random_query(&mut rng, 2);
        let k = rng.gen_range(1..20);
        let tree = KdTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn balltree_range_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(200 + seed);
        let ds = random_dataset(&mut rng, 120, 5);
        let q = random_query(&mut rng, 5);
        let eps = rng.gen_f64(0.0, 40.0);
        let tree = BallTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn balltree_knn_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(300 + seed);
        let ds = random_dataset(&mut rng, 120, 4);
        let q = random_query(&mut rng, 4);
        let k = rng.gen_range(1..20);
        let tree = BallTree::build(&ds);
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        tree.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn grid_range_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(400 + seed);
        let ds = random_dataset(&mut rng, 120, 2);
        let q = random_query(&mut rng, 2);
        let eps = rng.gen_f64(0.0, 40.0);
        let cell = rng.gen_f64(0.3, 10.0);
        let grid = GridIndex::build(&ds, cell).unwrap();
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        grid.range(&ds, &q, eps, &mut a);
        lin.range(&ds, &q, eps, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn grid_knn_equals_linear() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(500 + seed);
        let ds = random_dataset(&mut rng, 120, 2);
        let q = random_query(&mut rng, 2);
        let k = rng.gen_range(1..20);
        let cell = rng.gen_f64(0.3, 10.0);
        let grid = GridIndex::build(&ds, cell).unwrap();
        let lin = LinearScan::build(&ds);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        grid.knn(&ds, &q, k, &mut a);
        lin.knn(&ds, &q, k, &mut b);
        assert_eq!(ids(&a), ids(&b), "seed {seed}");
    }
}

#[test]
fn range_distances_are_correct() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(600 + seed);
        let ds = random_dataset(&mut rng, 80, 2);
        let eps = rng.gen_f64(0.0, 30.0);
        let tree = KdTree::build(&ds);
        let mut out = Vec::new();
        let q = ds.point(0).to_vec();
        tree.range(&ds, &q, eps, &mut out);
        // The query point itself is always in its own eps-neighbourhood.
        assert!(out.iter().any(|n| n.id == 0), "seed {seed}");
        for n in &out {
            let d = db_spatial::euclidean(&q, ds.point(n.id));
            assert!((d - n.dist).abs() < 1e-9, "seed {seed}");
            assert!(n.dist <= eps + 1e-12, "seed {seed}");
        }
        // Sorted by distance.
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist), "seed {seed}");
    }
}
