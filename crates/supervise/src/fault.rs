//! Env-gated fault injection for chaos testing.
//!
//! The grammar (one or more comma-separated faults):
//!
//! ```text
//! DB_FAULT=<phase>:panic            panic when <phase> is reached
//! DB_FAULT=<phase>:delay:<ms>       sleep <ms> milliseconds at <phase>
//! DB_FAULT=<phase>:cancel           cancel the run's token at <phase>
//! ```
//!
//! Pipeline code calls [`inject`] at its fault points: the phase
//! boundaries (`compression`, `clustering`, `recovery`) on the run's own
//! thread, and the worker entry points (`classify.worker`, `stats.worker`,
//! `matrix.worker`) inside spawned worker threads, where an injected
//! panic exercises the panic-capture path. With `DB_FAULT` unset the hook
//! is a read-lock acquisition on an empty spec — nanoseconds at phase
//! granularity, and nothing at all inside item loops.
//!
//! Tests use [`set_spec`] to install a spec programmatically; the spec is
//! **process-global**, so suites driving it must serialize those tests
//! (see `tests/supervision.rs`).

use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use crate::CancelToken;

/// What an injected fault does when its phase is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic on the thread that hit the fault point.
    Panic,
    /// Sleep for the given duration, then continue.
    Delay(Duration),
    /// Cancel the supervising token, then continue (the next cooperative
    /// check observes the cancellation).
    Cancel,
}

/// One parsed fault: fires when [`inject`] is called with this phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Fault-point name, e.g. `clustering` or `matrix.worker`.
    pub phase: String,
    /// What happens there.
    pub action: Action,
}

/// Parses a `DB_FAULT` spec. See the module docs for the grammar.
///
/// # Errors
///
/// A human-readable message naming the malformed clause.
pub fn parse_spec(spec: &str) -> Result<Vec<Fault>, String> {
    let mut faults = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (phase, action) = clause
            .split_once(':')
            .ok_or_else(|| format!("fault clause `{clause}` is missing `:<action>`"))?;
        if phase.is_empty() {
            return Err(format!("fault clause `{clause}` has an empty phase"));
        }
        let action = match action {
            "panic" => Action::Panic,
            "cancel" => Action::Cancel,
            delay => match delay.strip_prefix("delay:").map(str::parse::<u64>) {
                Some(Ok(ms)) => Action::Delay(Duration::from_millis(ms)),
                _ => {
                    return Err(format!(
                        "fault clause `{clause}`: action must be `panic`, `cancel`, or \
                         `delay:<ms>`"
                    ))
                }
            },
        };
        faults.push(Fault { phase: phase.to_string(), action });
    }
    Ok(faults)
}

fn state() -> &'static RwLock<Arc<Vec<Fault>>> {
    static STATE: OnceLock<RwLock<Arc<Vec<Fault>>>> = OnceLock::new();
    STATE.get_or_init(|| {
        let initial = match std::env::var("DB_FAULT") {
            Ok(spec) => match parse_spec(&spec) {
                Ok(faults) => faults,
                Err(e) => {
                    // An operator typo must not take the process down, but
                    // silently ignoring it would make chaos runs lie.
                    eprintln!("db-supervise: ignoring malformed DB_FAULT: {e}");
                    Vec::new()
                }
            },
            Err(_) => Vec::new(),
        };
        RwLock::new(Arc::new(initial))
    })
}

fn read_spec() -> Arc<Vec<Fault>> {
    match state().read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

/// Replaces the process-global fault spec (`None` clears it). Meant for
/// tests; the `DB_FAULT` environment variable seeds the initial spec.
///
/// # Panics
///
/// Panics on a malformed spec — a test installing a fault it cannot
/// express should fail loudly, unlike the env path.
pub fn set_spec(spec: Option<&str>) {
    let faults = match spec {
        Some(s) => match parse_spec(s) {
            Ok(f) => f,
            Err(e) => panic!("set_spec: {e}"),
        },
        None => Vec::new(),
    };
    match state().write() {
        Ok(mut guard) => *guard = Arc::new(faults),
        Err(poisoned) => *poisoned.into_inner() = Arc::new(faults),
    }
}

/// Whether any fault is currently installed (cheap pre-check for callers
/// that want to skip work when chaos is off).
pub fn active() -> bool {
    !read_spec().is_empty()
}

/// The fault point: fires every installed fault whose phase equals
/// `phase`. `Panic` panics on the calling thread (worker fault points run
/// under panic capture), `Delay` sleeps, `Cancel` cancels `token`.
pub fn inject(phase: &str, token: &CancelToken) {
    let spec = read_spec();
    if spec.is_empty() {
        return;
    }
    for fault in spec.iter().filter(|f| f.phase == phase) {
        match &fault.action {
            Action::Panic => panic!("injected fault: panic at {phase}"),
            Action::Delay(d) => std::thread::sleep(*d),
            Action::Cancel => token.cancel(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The spec is process-global; these tests serialize on one lock.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn parses_every_action() {
        let faults =
            parse_spec("compression:panic, clustering:delay:250 ,recovery:cancel").unwrap();
        assert_eq!(
            faults,
            vec![
                Fault { phase: "compression".into(), action: Action::Panic },
                Fault {
                    phase: "clustering".into(),
                    action: Action::Delay(Duration::from_millis(250))
                },
                Fault { phase: "recovery".into(), action: Action::Cancel },
            ]
        );
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_clauses() {
        assert!(parse_spec("compression").unwrap_err().contains("missing"));
        assert!(parse_spec(":panic").unwrap_err().contains("empty phase"));
        assert!(parse_spec("x:explode").unwrap_err().contains("must be"));
        assert!(parse_spec("x:delay:abc").unwrap_err().contains("must be"));
    }

    #[test]
    fn inject_cancel_and_delay() {
        let _g = guard();
        set_spec(Some("here:cancel"));
        assert!(active());
        let token = CancelToken::new();
        inject("elsewhere", &token);
        assert!(!token.is_cancelled());
        inject("here", &token);
        assert!(token.is_cancelled());
        set_spec(None);
        assert!(!active());
    }

    #[test]
    fn inject_panics_on_panic_action() {
        let _g = guard();
        set_spec(Some("boom:panic"));
        let token = CancelToken::new();
        let err = crate::catch_shared(|| {
            inject("boom", &token);
            Ok(())
        })
        .unwrap_err();
        set_spec(None);
        assert_eq!(err, crate::Stop::Panicked { message: "injected fault: panic at boom".into() });
    }
}
