//! `db-supervise` — run supervision primitives for the pipeline crates.
//!
//! A long clustering run should be a *guest* in its process, not an owner:
//! the caller must be able to bound its latency (deadlines), stop it
//! cooperatively (cancellation), and survive a bug in one of its worker
//! threads (panic capture). This crate provides the zero-dependency
//! building blocks the workspace threads through every pipeline phase:
//!
//! * [`CancelToken`] — a shared atomic flag; cloning shares the flag.
//! * [`RunBudget`] — the resource envelope of one run: an optional wall
//!   clock [`RunBudget::deadline`] and an optional
//!   [`RunBudget::max_matrix_bytes`] cap on the precomputed
//!   bubble-distance matrix.
//! * [`Supervisor`] — a token + armed deadline; [`Supervisor::check`] is
//!   the cooperative stop point.
//! * [`Ticker`] — amortizes `check` to one shared-state read every `N`
//!   items so hot loops pay a local integer decrement per item.
//! * [`Stop`] — why a phase stopped early: cancelled, over deadline, or a
//!   captured worker panic.
//! * [`catch`] / [`panic_message`] — wrap a worker body so a panic
//!   surfaces as [`Stop::Panicked`] instead of unwinding across the scope.
//! * [`fault`] — env-gated fault injection (`DB_FAULT=<phase>:<action>`)
//!   for chaos testing.
//!
//! # Determinism contract
//!
//! Supervision never alters *what* is computed, only *whether* a run is
//! allowed to finish: a check either returns `Ok(())` and the loop
//! continues exactly as before, or the whole phase's output is discarded
//! and a typed [`Stop`] propagates. A run that completes under
//! supervision is bit-for-bit identical to an unsupervised run.

#![warn(missing_docs)]
// Supervision is the layer that turns panics into typed errors — it must
// not introduce its own. Same policy as db-obsd, db-serve, and
// core::pipeline; the db-audit `no-unwrap-prod` rule pins the same set.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag. Cloning is cheap and shares the flag:
/// [`CancelToken::cancel`] from any clone (any thread) is observed by
/// every [`Supervisor::check`] holding another clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested (one relaxed-acquire load).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// The resource envelope of one pipeline run. `Default` is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock budget for one attempt. When exceeded, the run stops at
    /// the next cooperative check with [`Stop::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Upper bound in bytes for the precomputed bubble-distance matrix.
    /// When the matrix would be larger, it is skipped and distances are
    /// evaluated on the fly — bit-identical results, bounded memory.
    pub max_matrix_bytes: Option<usize>,
}

impl RunBudget {
    /// An explicitly unlimited budget (same as `Default`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self { deadline: Some(deadline), max_matrix_bytes: None }
    }

    /// Whether nothing is bounded (supervision checks stay trivially Ok
    /// unless the token is cancelled).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_matrix_bytes.is_none()
    }
}

/// Why a supervised phase stopped before producing its output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The wall-clock deadline elapsed; `elapsed` is the time since the
    /// supervisor was armed when the check observed the overrun.
    DeadlineExceeded {
        /// Time since [`Supervisor`] creation at the detecting check.
        elapsed: Duration,
    },
    /// A worker thread panicked; the panic was captured and its partial
    /// results discarded.
    Panicked {
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for Stop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stop::Cancelled => write!(f, "cancelled"),
            Stop::DeadlineExceeded { elapsed } => {
                write!(f, "deadline exceeded after {:.3}s", elapsed.as_secs_f64())
            }
            Stop::Panicked { message } => write!(f, "worker panicked: {message}"),
        }
    }
}

impl std::error::Error for Stop {}

/// A cancellation token armed with an optional deadline: the cooperative
/// stop point every supervised loop consults (directly or through a
/// [`Ticker`]).
#[derive(Debug)]
pub struct Supervisor {
    token: CancelToken,
    started: Instant,
    deadline: Option<Instant>,
}

impl Supervisor {
    /// Arms `token` with `deadline` (measured from now).
    pub fn new(token: CancelToken, deadline: Option<Duration>) -> Self {
        let started = Instant::now();
        Self { token, started, deadline: deadline.map(|d| started + d) }
    }

    /// A supervisor with a fresh token and no deadline: checks only fail
    /// if something cancels the fresh token (e.g. an injected fault).
    pub fn unlimited() -> Self {
        Self::new(CancelToken::new(), None)
    }

    /// The shared token (for handing to cancellers or fault hooks).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Time since the supervisor was armed.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The cooperative stop point: `Err` when cancelled or past the
    /// deadline. Cost when neither budget is armed: one atomic load.
    #[inline]
    pub fn check(&self) -> Result<(), Stop> {
        if self.token.is_cancelled() {
            return Err(Stop::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Stop::DeadlineExceeded { elapsed: self.started.elapsed() });
            }
        }
        Ok(())
    }
}

/// Amortizes [`Supervisor::check`] over a hot loop: `tick()` costs one
/// local decrement per item and consults the supervisor every `every`
/// ticks (and on the very first tick, so an already-cancelled run stops
/// before doing any work).
#[derive(Debug)]
pub struct Ticker<'a> {
    sup: &'a Supervisor,
    every: u32,
    left: u32,
}

impl<'a> Ticker<'a> {
    /// A ticker consulting `sup` every `every` ticks (`every >= 1`).
    pub fn new(sup: &'a Supervisor, every: u32) -> Self {
        Self { sup, every: every.max(1), left: 1 }
    }

    /// One loop iteration. `Err` stops the phase.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Stop> {
        self.left -= 1;
        if self.left == 0 {
            self.left = self.every;
            self.sup.check()
        } else {
            Ok(())
        }
    }
}

/// Renders a panic payload (from [`catch_unwind`] or `JoinHandle::join`)
/// as text: the `&str` / `String` payloads `panic!` produces, or a
/// placeholder for exotic payload types.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f`, converting a panic into [`Stop::Panicked`] so worker bodies
/// never unwind across a thread scope. The closure's partial effects are
/// confined to state it owns; callers discard per-worker buffers on `Err`.
pub fn catch<T>(f: impl FnOnce() -> Result<T, Stop> + UnwindSafe) -> Result<T, Stop> {
    match catch_unwind(f) {
        Ok(r) => r,
        Err(payload) => Err(Stop::Panicked { message: panic_message(payload.as_ref()) }),
    }
}

/// [`catch`] for closures borrowing shared state (the common scoped-worker
/// shape). The caller asserts unwind safety: every supervised worker in
/// this workspace writes only into its own pre-assigned output slots,
/// which are discarded wholesale when any worker fails.
pub fn catch_shared<T>(f: impl FnOnce() -> Result<T, Stop>) -> Result<T, Stop> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(Stop::Panicked { message: panic_message(payload.as_ref()) }),
    }
}

/// Merges per-worker outcomes: a captured panic anywhere wins (it is the
/// most severe and must not be masked by a cooperative stop that other
/// workers reported), otherwise the first error in worker order.
pub fn first_stop<I: IntoIterator<Item = Result<(), Stop>>>(slots: I) -> Result<(), Stop> {
    let mut first_err: Option<Stop> = None;
    for slot in slots {
        match slot {
            Ok(()) => {}
            Err(p @ Stop::Panicked { .. }) => return Err(p),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_across_clones_and_threads() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn check_passes_when_unarmed_and_fails_when_cancelled() {
        let sup = Supervisor::unlimited();
        assert_eq!(sup.check(), Ok(()));
        sup.token().cancel();
        assert_eq!(sup.check(), Err(Stop::Cancelled));
    }

    #[test]
    fn deadline_fires_after_elapsing() {
        let sup = Supervisor::new(CancelToken::new(), Some(Duration::from_millis(5)));
        assert_eq!(sup.check(), Ok(()));
        std::thread::sleep(Duration::from_millis(10));
        match sup.check() {
            Err(Stop::DeadlineExceeded { elapsed }) => {
                assert!(elapsed >= Duration::from_millis(5), "elapsed {elapsed:?}");
            }
            other => panic!("expected deadline overrun, got {other:?}"),
        }
    }

    #[test]
    fn cancellation_takes_precedence_over_deadline() {
        let sup = Supervisor::new(CancelToken::new(), Some(Duration::ZERO));
        sup.token().cancel();
        assert_eq!(sup.check(), Err(Stop::Cancelled));
    }

    #[test]
    fn ticker_checks_first_tick_then_every_n() {
        let sup = Supervisor::unlimited();
        let mut t = Ticker::new(&sup, 4);
        assert!(t.tick().is_ok()); // consults (first tick)
        sup.token().cancel();
        // Ticks 2..4 run on the local countdown without consulting.
        assert!(t.tick().is_ok());
        assert!(t.tick().is_ok());
        assert!(t.tick().is_ok());
        // Tick 5 consults again and observes the cancellation.
        assert_eq!(t.tick(), Err(Stop::Cancelled));
    }

    #[test]
    fn already_cancelled_run_stops_on_the_first_tick() {
        let sup = Supervisor::unlimited();
        sup.token().cancel();
        let mut t = Ticker::new(&sup, 1024);
        assert_eq!(t.tick(), Err(Stop::Cancelled));
    }

    #[test]
    fn catch_converts_panics_to_stop() {
        assert_eq!(catch(|| Ok(7)), Ok(7));
        assert_eq!(catch::<()>(|| Err(Stop::Cancelled)), Err(Stop::Cancelled));
        let err = catch::<()>(|| panic!("boom in worker")).unwrap_err();
        assert_eq!(err, Stop::Panicked { message: "boom in worker".into() });
        let err = catch_shared::<()>(|| panic!("{}", format_args!("fmt {}", 3))).unwrap_err();
        assert_eq!(err, Stop::Panicked { message: "fmt 3".into() });
    }

    #[test]
    fn first_stop_prefers_panics_then_worker_order() {
        let dl = Stop::DeadlineExceeded { elapsed: Duration::from_secs(1) };
        let pk = Stop::Panicked { message: "x".into() };
        assert_eq!(first_stop([Ok(()), Ok(())]), Ok(()));
        assert_eq!(first_stop([Err(Stop::Cancelled), Err(dl.clone())]), Err(Stop::Cancelled));
        assert_eq!(first_stop([Err(dl), Err(pk.clone())]), Err(pk));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Stop::Cancelled.to_string(), "cancelled");
        assert!(Stop::DeadlineExceeded { elapsed: Duration::from_millis(1500) }
            .to_string()
            .contains("1.500"));
        assert!(Stop::Panicked { message: "m".into() }.to_string().contains('m'));
    }

    #[test]
    fn budget_constructors() {
        assert!(RunBudget::default().is_unlimited());
        assert!(RunBudget::unlimited().is_unlimited());
        let b = RunBudget::with_deadline(Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        assert_eq!(b.max_matrix_bytes, None);
    }
}
