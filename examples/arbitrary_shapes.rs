//! Why hierarchical/density clustering at all? Concentric rings share one
//! centroid, so k-means cannot separate them — OPTICS can, and Data
//! Bubbles preserve that ability through 100× compression. (This is the
//! cluster-notion contrast the paper's introduction draws between
//! partitioning and hierarchical methods.)
//!
//! ```text
//! cargo run --release --example arbitrary_shapes
//! ```

use data_bubbles::pipeline::optics_sa_bubbles;
use db_datagen::{nested_rings, two_moons, LabeledDataset, RingsParams};
use db_eval::adjusted_rand_index;
use db_hierarchical::{kmeans, KMeansParams};
use db_optics::OpticsParams;

fn evaluate(name: &str, data: &LabeledDataset, k_bubbles: usize, cut: f64) {
    let k_true = data.n_clusters();

    // k-means with the true k (the best case for the baseline).
    let km = kmeans(&data.data, &KMeansParams { k: k_true, max_iters: 100, seed: 1 });
    let km_labels: Vec<i32> = km.assignment.iter().map(|&a| a as i32).collect();
    let km_ari = adjusted_rand_index(&data.labels, &km_labels);

    // Data Bubbles at 100x compression.
    let out = optics_sa_bubbles(
        &data.data,
        k_bubbles,
        7,
        &OpticsParams { eps: f64::INFINITY, min_pts: 10 },
    )
    .expect("valid pipeline configuration");
    let labels = out.expanded.as_ref().unwrap().extract_dbscan(cut);
    let bub_ari = adjusted_rand_index(&data.labels, &labels);

    println!("{name:<18} k-means ARI = {km_ari:>6.3}   OPTICS-SA-Bubbles ARI = {bub_ari:>6.3}");
}

fn main() {
    println!("non-convex clusters, {} points each, 100x compression\n", 20_000);

    let rings = nested_rings(
        &RingsParams {
            n: 20_000,
            radii: vec![5.0, 15.0, 30.0],
            thickness: 0.4,
            noise_fraction: 0.0,
        },
        42,
    );
    evaluate("concentric rings", &rings, 200, 1.5);

    let moons = two_moons(20_000, 0.05, 42);
    evaluate("two moons", &moons, 200, 0.12);

    println!("\nk-means is given the true cluster count and still fails on these shapes;");
    println!("the bubble pipeline recovers them from 200 summaries of 20,000 points.");
}
