//! Classical hierarchical clustering on Data Bubbles (paper §6): the
//! bubble distance of Definition 6 drives an ordinary single-link
//! agglomeration; the dendrogram is cut and expanded back to all original
//! objects — hierarchical clustering of 100,000 points via a 200-leaf
//! dendrogram.
//!
//! ```text
//! cargo run --release --example bubble_dendrogram
//! ```

use data_bubbles::{bubble_dendrogram, expand_bubble_cut, BubbleSpace, DataBubble};
use db_datagen::{ds1, Ds1Params};
use db_eval::adjusted_rand_index;
use db_hierarchical::Linkage;
use db_sampling::compress_by_sampling;

fn main() {
    let data = ds1(&Ds1Params { n: 100_000, noise_fraction: 0.0 }, 11);
    println!("data set: {} points, {} generating components", data.len(), data.n_clusters());

    let t = std::time::Instant::now();
    // Compress to 200 bubbles.
    let compressed = compress_by_sampling(&data.data, 200, 11).expect("k <= n");
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let members = compressed.members();

    // Single-link dendrogram over the bubbles.
    let dendrogram = bubble_dendrogram(&space, Linkage::Single);
    println!(
        "compressed and built a {}-leaf dendrogram in {:.2}s",
        dendrogram.n_leaves(),
        t.elapsed().as_secs_f64()
    );

    // Walk down the hierarchy: cut at several k, expand to all objects.
    for k in [2usize, 4, 10] {
        let labels = expand_bubble_cut(&dendrogram, &members, k);
        let ari = adjusted_rand_index(&data.labels, &labels);
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let mut sizes: Vec<usize> = sizes.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "cut k = {k:>2}: ARI vs components = {ari:.3}, largest clusters: {:?}",
            &sizes[..sizes.len().min(5)]
        );
    }

    // The merge heights themselves show the cluster hierarchy: a few large
    // jumps separate the top-level structures.
    let heights: Vec<f64> = dendrogram.merges().iter().map(|m| m.dist).collect();
    let top: Vec<String> = heights.iter().rev().take(5).map(|h| format!("{h:.2}")).collect();
    println!("largest merge heights: {}", top.join(", "));
}
