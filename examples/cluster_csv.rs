//! Cluster your own data: load a numeric CSV, run the Data-Bubble
//! pipeline, and write the expanded reachability plot and cluster labels
//! back to CSV files.
//!
//! ```text
//! cargo run --release --example cluster_csv -- \
//!     <input.csv> [--k 1000] [--min-pts 10] [--cut <eps'>] \
//!     [--skip-columns N] [--skip-lines N] [--out-prefix clustered] [--external]
//! ```
//!
//! With `--external` the data never lives in memory as a whole: the file
//! is streamed in passes and the cluster-ordered database is written by
//! seeking (the paper's disk-based procedure; see
//! `data_bubbles::pipeline::run_external`).
//!
//! For the real Corel "Color Moments" file from the UCI KDD archive
//! (`ColorMoments.asc`, rows `<image id> <9 moments>`):
//!
//! ```text
//! cargo run --release --example cluster_csv -- ColorMoments.asc --skip-columns 1
//! ```
//!
//! Without an input file, the example demonstrates itself on a bundled
//! synthetic data set.

use data_bubbles::pipeline::optics_sa_bubbles;
use db_optics::OpticsParams;
use db_spatial::{read_csv, write_csv, CsvOptions, Dataset};
use std::io::Write;

struct Args {
    input: Option<String>,
    k: usize,
    min_pts: usize,
    cut: Option<f64>,
    csv: CsvOptions,
    out_prefix: String,
    external: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        k: 1_000,
        min_pts: 10,
        cut: None,
        csv: CsvOptions::default(),
        out_prefix: "clustered".to_string(),
        external: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--k" => args.k = next("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--min-pts" => {
                args.min_pts = next("--min-pts")?.parse().map_err(|e| format!("--min-pts: {e}"))?
            }
            "--cut" => args.cut = Some(next("--cut")?.parse().map_err(|e| format!("--cut: {e}"))?),
            "--skip-columns" => {
                args.csv.skip_columns =
                    next("--skip-columns")?.parse().map_err(|e| format!("--skip-columns: {e}"))?
            }
            "--skip-lines" => {
                args.csv.skip_lines =
                    next("--skip-lines")?.parse().map_err(|e| format!("--skip-lines: {e}"))?
            }
            "--out-prefix" => args.out_prefix = next("--out-prefix")?,
            "--external" => args.external = true,
            other if !other.starts_with('-') && args.input.is_none() => {
                args.input = Some(other.to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    if args.external {
        let Some(input) = &args.input else {
            eprintln!("--external needs an input file");
            std::process::exit(2);
        };
        let output = format!("{}_ordered.csv", args.out_prefix);
        let cfg = data_bubbles::pipeline::ExternalConfig {
            k: args.k,
            optics: OpticsParams { eps: f64::INFINITY, min_pts: args.min_pts },
            seed: 42,
            csv: args.csv.clone(),
        };
        let t = std::time::Instant::now();
        match data_bubbles::pipeline::run_external(
            std::path::Path::new(input),
            std::path::Path::new(&output),
            &cfg,
        ) {
            Ok(res) => {
                println!(
                    "external run: {} rows x {} dims clustered in {:.2}s",
                    res.n_objects,
                    res.dim,
                    t.elapsed().as_secs_f64()
                );
                println!("wrote {output} (reachability,<row> in cluster order)");
                return;
            }
            Err(e) => {
                eprintln!("external run failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let ds: Dataset = match &args.input {
        Some(path) => match read_csv(path, &args.csv) {
            Ok(ds) => ds,
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("(no input file given; demonstrating on a synthetic data set)\n");
            db_datagen::ds2(&db_datagen::Ds2Params { n: 20_000, ..Default::default() }, 1).data
        }
    };
    println!("loaded {} points x {} dims", ds.len(), ds.dim());

    let k = args.k.min(ds.len());
    let params = OpticsParams { eps: f64::INFINITY, min_pts: args.min_pts };
    let t = std::time::Instant::now();
    let out = optics_sa_bubbles(&ds, k, 42, &params).expect("non-empty data, k >= 1");
    let expanded = out.expanded.expect("bubble pipelines expand");
    println!("clustered via {} Data Bubbles in {:.2}s", k, t.elapsed().as_secs_f64());

    // Pick a cut: given, or 4x the median finite reachability.
    let reach = expanded.reachabilities();
    let cut = args.cut.unwrap_or_else(|| {
        let mut finite: Vec<f64> = reach.iter().copied().filter(|v| v.is_finite()).collect();
        finite.sort_by(f64::total_cmp);
        if finite.is_empty() {
            f64::INFINITY
        } else {
            4.0 * finite[finite.len() / 2]
        }
    });
    let labels = expanded.extract_dbscan(cut);
    let n_clusters =
        labels.iter().copied().filter(|&l| l >= 0).collect::<std::collections::HashSet<_>>().len();
    let noise = labels.iter().filter(|&&l| l < 0).count();
    println!("cut = {cut:.4}: {n_clusters} clusters, {noise} noise points");

    // Write outputs: the plot (cluster order) and per-object labels.
    let plot_path = format!("{}_plot.csv", args.out_prefix);
    let labels_path = format!("{}_labels.csv", args.out_prefix);
    let mut plot = std::io::BufWriter::new(std::fs::File::create(&plot_path).expect("writable"));
    writeln!(plot, "# position,object_id,reachability").unwrap();
    for (pos, e) in expanded.entries.iter().enumerate() {
        writeln!(plot, "{pos},{},{}", e.object, e.reachability).unwrap();
    }
    drop(plot);
    let mut lf = std::io::BufWriter::new(std::fs::File::create(&labels_path).expect("writable"));
    writeln!(lf, "# object_id,cluster").unwrap();
    for (i, l) in labels.iter().enumerate() {
        writeln!(lf, "{i},{l}").unwrap();
    }
    drop(lf);
    println!("wrote {plot_path} and {labels_path}");

    // Also persist the data we clustered, for reproducibility.
    if args.input.is_none() {
        let data_path = format!("{}_data.csv", args.out_prefix);
        write_csv(&ds, &data_path).expect("writable");
        println!("wrote {data_path}");
    }
}
