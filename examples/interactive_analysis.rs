//! The paper's motivating scenario (§1): "it makes a large difference for
//! the user if he can cluster his data in a couple of seconds or in a
//! couple of hours (e.g. if the analyst wants to try out different subsets
//! of the attributes without incurring prohibitive waiting times)".
//!
//! This example plays that analyst: a 200,000-point data set, four
//! different attribute subsets to explore — each explored in milliseconds
//! via Data Bubbles instead of seconds-to-minutes via full OPTICS, with
//! the cluster structure preserved.
//!
//! ```text
//! cargo run --release --example interactive_analysis
//! ```

use data_bubbles::pipeline::optics_sa_bubbles;
use db_datagen::{gaussian_family, GaussianFamilyParams};
use db_eval::adjusted_rand_index;
use db_optics::OpticsParams;

fn main() {
    // "The database": 200k rows with 10 attributes, 15 latent groups.
    let data = gaussian_family(
        &GaussianFamilyParams {
            n: 200_000,
            dim: 10,
            clusters: 15,
            domain: 300.0,
            ..GaussianFamilyParams::default()
        },
        7,
    );
    println!("database: {} rows x {} attributes\n", data.len(), data.data.dim());

    // The analyst tries different attribute subsets (prefix projections).
    for attrs in [2usize, 4, 6, 10] {
        let view = data.project(attrs);
        let params = OpticsParams { eps: f64::INFINITY, min_pts: 20 };
        let t = std::time::Instant::now();
        let out =
            optics_sa_bubbles(&view.data, 1_000, 7, &params).expect("valid pipeline configuration");
        let dt = t.elapsed();

        // Cut the expanded plot at a scale suited to this dimensionality.
        let cut = 1.1 * 3.0 * (2.0 * attrs as f64).sqrt();
        let labels = out.expanded.as_ref().unwrap().extract_dbscan(cut);
        let found = labels
            .iter()
            .copied()
            .filter(|&l| l >= 0)
            .collect::<std::collections::HashSet<_>>()
            .len();
        println!(
            "attributes 1..{attrs:<2}  clustered in {:>7.3}s   clusters found = {found:>2}/15   \
             ARI vs truth = {:.3}",
            dt.as_secs_f64(),
            adjusted_rand_index(&data.labels, &labels),
        );
    }
    println!("\nEvery exploration ran on 1,000 Data Bubbles instead of 200,000 rows.");
}
