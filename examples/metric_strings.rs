//! Data Bubbles over **non-Euclidean data** — the paper's §10 future work,
//! demonstrated on strings under Levenshtein edit distance: 6,000 noisy
//! variants of a handful of dictionary words are compressed into 60 metric
//! Data Bubbles and clustered with the unmodified OPTICS walk.
//!
//! ```text
//! cargo run --release --example metric_strings
//! ```

use data_bubbles::{compress_metric, MetricBubbleSpace};
use db_datagen::Rng;
use db_optics::{extract_dbscan, optics, OpticsParams, OpticsSpace};

/// Classic dynamic-programming Levenshtein distance.
fn levenshtein(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()] as f64
}

/// Mutates a word with `edits` random single-character substitutions or
/// insertions.
fn mutate(word: &str, edits: usize, rng: &mut Rng) -> String {
    let mut chars: Vec<char> = word.chars().collect();
    for _ in 0..edits {
        let alphabet = b"abcdefghijklmnopqrstuvwxyz";
        let c = alphabet[rng.below(alphabet.len())] as char;
        if rng.uniform() < 0.5 && !chars.is_empty() {
            let pos = rng.below(chars.len());
            chars[pos] = c;
        } else {
            let pos = rng.below(chars.len() + 1);
            chars.insert(pos, c);
        }
    }
    chars.into_iter().collect()
}

fn main() {
    const WORDS: [&str; 6] =
        ["database", "clustering", "hierarchy", "reachability", "compression", "bubble"];
    let mut rng = Rng::new(42);
    let mut strings: Vec<String> = Vec::new();
    let mut truth: Vec<i32> = Vec::new();
    for (label, word) in WORDS.iter().enumerate() {
        for _ in 0..1_000 {
            let edits = rng.below(2); // up to 1 edit: stays near the word
            strings.push(mutate(word, edits, &mut rng));
            truth.push(label as i32);
        }
    }
    println!("{} strings derived from {} words\n", strings.len(), WORDS.len());

    // Compress to 60 metric Data Bubbles (factor 100). The distance
    // closure is all the algorithm needs — no vector space anywhere.
    let dist = |i: usize, j: usize| levenshtein(&strings[i], &strings[j]);
    let t = std::time::Instant::now();
    let compression = compress_metric(strings.len(), 60, 10, 7, dist);
    let space = MetricBubbleSpace::new(compression.bubbles.clone(), dist);
    let ordering = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts: 10 });
    println!(
        "compressed + clustered in {:.2}s ({} bubbles)",
        t.elapsed().as_secs_f64(),
        space.len()
    );

    // Cut the bubble ordering: edit distance within a word family is <= 2,
    // between families typically >= 5.
    let bubble_labels = extract_dbscan(&ordering, 3.0, space.len());

    // Transfer labels to the strings through the classification.
    let labels: Vec<i32> =
        compression.assignment.iter().map(|&b| bubble_labels[b as usize]).collect();
    let ari = db_eval::adjusted_rand_index(&truth, &labels);
    let found =
        labels.iter().copied().filter(|&l| l >= 0).collect::<std::collections::HashSet<_>>().len();
    println!("clusters found: {found} (truth: {})", WORDS.len());
    println!("ARI vs the generating words: {ari:.3}");

    // Show one representative per cluster.
    for cluster in 0..found as i32 {
        if let Some(b) = (0..space.len()).find(|&b| bubble_labels[b] == cluster) {
            let rep = &strings[space.bubbles()[b].rep_id];
            println!("  cluster {cluster}: representative string {rep:?}");
        }
    }
}
