//! Quickstart: compress a data set into Data Bubbles, run OPTICS on the
//! bubbles, and recover the full clustering structure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--trace-out run.trace.json` to record an event-level trace of
//! the run and write it as Chrome trace JSON (open in Perfetto or
//! `chrome://tracing`); `DB_TRACE=1` in the environment does the same
//! recording without the file.

use data_bubbles::pipeline::optics_sa_bubbles;
use db_datagen::{ds2, Ds2Params};
use db_eval::adjusted_rand_index;
use db_optics::{extract_dbscan, optics_points, OpticsParams};

fn main() {
    let trace_out = {
        let mut args = std::env::args().skip(1);
        match (args.next().as_deref().map(str::to_owned), args.next()) {
            (Some(flag), Some(path)) if flag == "--trace-out" => Some(path),
            (None, _) => None,
            _ => {
                eprintln!("usage: quickstart [--trace-out FILE]");
                std::process::exit(2);
            }
        }
    };
    if trace_out.is_some() {
        db_obs::trace::set_enabled(true);
    }
    // A 50,000-point data set with five Gaussian clusters (the paper's DS2,
    // scaled down 2x).
    let data = ds2(&Ds2Params { n: 50_000, ..Ds2Params::default() }, 42);
    println!("data set: {} points in {} clusters", data.len(), data.n_clusters());

    // --- The expensive way: OPTICS on all 50,000 points. ---------------
    let params = OpticsParams { eps: 7.0, min_pts: 10 };
    let t = std::time::Instant::now();
    let full = optics_points(&data.data, &params);
    let full_time = t.elapsed();
    let full_labels = extract_dbscan(&full, 2.0, data.len());
    println!(
        "full OPTICS:     {:>8.3}s   ARI vs truth = {:.3}",
        full_time.as_secs_f64(),
        adjusted_rand_index(&data.labels, &full_labels)
    );

    // --- The Data Bubbles way: 250 bubbles (compression factor 200). ---
    let bubble_params = OpticsParams { eps: f64::INFINITY, min_pts: 10 };
    let t = std::time::Instant::now();
    let out = optics_sa_bubbles(&data.data, 250, 42, &bubble_params)
        .expect("valid pipeline configuration");
    let bubble_time = t.elapsed();

    // The expanded ordering contains *every* original object, in cluster
    // order, with estimated reachabilities — cut it like a normal plot.
    let expanded = out.expanded.as_ref().expect("bubble pipelines expand");
    assert_eq!(expanded.len(), data.len());
    let labels = expanded.extract_dbscan(2.0);
    println!(
        "SA-Bubbles:      {:>8.3}s   ARI vs truth = {:.3}   speed-up = {:.0}x",
        bubble_time.as_secs_f64(),
        adjusted_rand_index(&data.labels, &labels),
        full_time.as_secs_f64() / bubble_time.as_secs_f64()
    );
    println!(
        "agreement with the full run: ARI = {:.3}",
        adjusted_rand_index(&full_labels, &labels)
    );

    // Cluster sizes recovered from 0.5% of the data:
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        if l >= 0 {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable();
    println!("recovered cluster sizes: {sizes:?} (truth: 5 x 10,000)");

    // --- The same run under a budget. ----------------------------------
    // A deadline plus a matrix byte cap: the deadline aborts (or degrades,
    // via run_pipeline_supervised) a run that overruns it, the byte cap
    // bounds the k×k distance matrix by silently falling back to on-the-fly
    // distances — with bit-identical output. Generous values here, so this
    // run completes untouched; shrink the deadline to see a typed
    // `PipelineError::DeadlineExceeded` instead of a hung process.
    use data_bubbles::pipeline::{
        run_pipeline_supervised, Compressor, PipelineConfig, Recovery, RunBudget,
    };
    let mut cfg =
        PipelineConfig::new(250, Compressor::Sample { seed: 42 }, Recovery::Bubbles, bubble_params);
    cfg.budget = RunBudget {
        deadline: Some(std::time::Duration::from_secs(60)),
        max_matrix_bytes: Some(64 * 1024 * 1024),
    };
    match run_pipeline_supervised(&data.data, &cfg) {
        Ok(budgeted) => {
            let budgeted_labels =
                budgeted.expanded.as_ref().expect("bubble pipelines expand").extract_dbscan(2.0);
            println!(
                "under budget:    degradations = {}   agreement with unbudgeted run: ARI = {:.3}",
                budgeted.degradations.len(),
                adjusted_rand_index(&labels, &budgeted_labels)
            );
        }
        Err(e) => println!("under budget:    did not finish: {e}"),
    }

    if let Some(path) = trace_out {
        let json = db_obs::trace_json(&db_obs::trace::events());
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "wrote event trace to {path} ({} bytes — open in Perfetto / chrome://tracing)",
            json.len()
        );
    }
}
