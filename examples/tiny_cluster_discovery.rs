//! The paper's real-world scenario (§9.3): find two *tiny* clusters
//! embedded in 68,040 points of almost uniform density (the Corel color
//! moments challenge profile) — at a compression factor of 68.
//!
//! ```text
//! cargo run --release --example tiny_cluster_discovery
//! ```

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;
use db_datagen::{corel_like, CorelParams};
use db_optics::OpticsParams;
use std::collections::HashMap;

fn main() {
    let data = corel_like(&CorelParams::default(), 2001);
    println!(
        "data set: {} points x {} dims; two hidden clusters of {} points each\n",
        data.len(),
        data.data.dim(),
        data.cluster_sizes()[0]
    );

    let params = OpticsParams { eps: f64::INFINITY, min_pts: 10 };
    let k = data.len() / 68; // the paper's compression factor

    for (name, run) in [
        ("OPTICS-SA-Bubbles", optics_sa_bubbles(&data.data, k, 1, &params)),
        ("OPTICS-CF-Bubbles", optics_cf_bubbles(&data.data, k, &BirchParams::default(), &params)),
    ] {
        let out = run.expect("valid pipeline configuration");
        let t = out.timings;
        let expanded = out.expanded.as_ref().unwrap();
        // Anything below 0.25 reachability is far denser than the
        // background (whose 10-NN distance is ~0.39).
        let labels = expanded.extract_dbscan(0.25);

        // Keep only small extracted clusters — the interesting finds.
        let mut sizes: HashMap<i32, usize> = HashMap::new();
        for &l in &labels {
            if l >= 0 {
                *sizes.entry(l).or_insert(0) += 1;
            }
        }
        let tiny: Vec<(i32, usize)> =
            sizes.iter().filter(|&(_, &s)| s < data.len() / 10).map(|(&l, &s)| (l, s)).collect();

        println!(
            "{name}: {} bubbles, total {:.2}s ({:.2}s compression, {:.2}s clustering)",
            out.n_representatives,
            t.total().as_secs_f64(),
            t.compression.as_secs_f64(),
            t.clustering.as_secs_f64()
        );
        println!("  small dense clusters found: {}", tiny.len());
        for (l, s) in &tiny {
            // How pure is each find vs. the ground truth?
            let members: Vec<usize> = (0..data.len()).filter(|&i| labels[i] == *l).collect();
            let truth_hits = members.iter().filter(|&&i| data.labels[i] >= 0).count();
            println!(
                "    cluster {l}: {s} points, {truth_hits} of them from a true hidden cluster"
            );
        }
        println!();
    }
    println!("(The paper's result: sampling-based bubbles recover both tiny clusters;");
    println!(" BIRCH-based bubbles approximate the structure but lose them.)");
}
