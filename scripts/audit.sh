#!/usr/bin/env bash
# Run the workspace invariant auditor exactly as CI does.
#
#   scripts/audit.sh              # human-readable findings, budget check
#   scripts/audit.sh --json       # machine-readable report
#   scripts/audit.sh --rule total-cmp   # one rule, no budget gate
#
# Exits nonzero on any finding or on suppression-budget drift
# (see audit.budget and DESIGN.md §14).
set -euo pipefail
cd "$(dirname "$0")/.."

args=("--root" ".")
budget=1
for a in "$@"; do
    # A --rule subset skips meta-rules, so the full-run budget no longer
    # applies; pass the flag through and drop the gate.
    [[ "$a" == "--rule" ]] && budget=0
    args+=("$a")
done
if [[ "$budget" == 1 ]]; then
    args+=("--budget" "audit.budget")
fi

exec cargo run -q --release -p db-audit -- "${args[@]}"
