#!/usr/bin/env bash
# Streaming-service smoke test: start the `serve` binary, run concurrent
# batched ingests while scraping /label, /stats and /metrics, force a
# budget-bounded recluster, assert the staleness-triggered recluster
# advanced the artifact generation and health stayed serving, then shut
# down cleanly via POST /shutdown. Also runs the ingest-throughput bench
# and validates its BENCH_pr8.json output.
#
# Usage: scripts/serve_smoke.sh [OUT_DIR]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-serve-artifacts}"
ADDR="127.0.0.1:9899"
BASE="http://$ADDR"
mkdir -p "$OUT_DIR"

echo "== build =="
cargo build --release -p db-serve -p db-bench

echo "== start the service =="
./target/release/serve \
    --addr "$ADDR" --n 4000 --k 80 --seed 7 \
    --max-absorbed 600 --deadline-ms 30000 --max-seconds 300 \
    > "$OUT_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

echo "== wait for /healthz =="
for i in $(seq 1 60); do
    if curl -sf --max-time 2 "$BASE/healthz" | grep -q ok; then
        break
    fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve exited before serving:" >&2
        cat "$OUT_DIR/serve.log" >&2
        exit 1
    fi
    if [ "$i" -eq 60 ]; then
        echo "service never came up" >&2
        exit 1
    fi
    sleep 1
done

GEN0=$(curl -sf "$BASE/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["generation"])')
echo "service up, generation $GEN0"

echo "== concurrent batched ingests + query scrapes =="
python3 - "$BASE" "$OUT_DIR" <<'EOF'
import json, random, sys, threading, urllib.request

base, out_dir = sys.argv[1], sys.argv[2]
errors = []

def ingest(worker):
    rng = random.Random(worker)
    try:
        for _ in range(10):
            points = [[rng.uniform(-4, 4), rng.uniform(-4, 4)] for _ in range(40)]
            body = json.dumps({"points": points}).encode()
            req = urllib.request.Request(f"{base}/ingest", data=body, method="POST")
            with urllib.request.urlopen(req, timeout=30) as resp:
                doc = json.loads(resp.read())
                assert doc["accepted"] == 40, doc
    except Exception as e:  # noqa: BLE001 - collect, report at the end
        errors.append(f"ingest worker {worker}: {e!r}")

def scrape(worker):
    try:
        for _ in range(20):
            with urllib.request.urlopen(f"{base}/label?point=0.5,0.5", timeout=10) as resp:
                doc = json.loads(resp.read())
                assert "label" in doc, doc
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
                resp.read()
    except Exception as e:  # noqa: BLE001
        errors.append(f"scrape worker {worker}: {e!r}")

threads = [threading.Thread(target=ingest, args=(w,)) for w in range(4)]
threads += [threading.Thread(target=scrape, args=(w,)) for w in range(2)]
for t in threads: t.start()
for t in threads: t.join()
assert not errors, "\n".join(errors)

with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
    stats = json.loads(resp.read())
json.dump(stats, open(f"{out_dir}/stats_after_ingest.json", "w"), indent=2)
# 4 workers x 10 batches x 40 points on top of the 4000-point bootstrap.
assert stats["n_objects"] == 4000 + 1600, stats
print(f"ingested to n_objects={stats['n_objects']}, generation={stats['generation']}")
EOF

echo "== staleness-triggered recluster advanced the generation =="
python3 - "$BASE" "$GEN0" <<'EOF'
import json, sys, time, urllib.request
base, gen0 = sys.argv[1], int(sys.argv[2])
# 1600 absorbed > --max-absorbed 600: a background recluster must have
# been triggered; give it a moment to install.
for _ in range(100):
    with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
        stats = json.loads(resp.read())
    if stats["generation"] > gen0 and not stats["recluster_in_flight"]:
        print(f"generation advanced {gen0} -> {stats['generation']}")
        break
    time.sleep(0.2)
else:
    raise SystemExit(f"generation never advanced past {gen0}: {stats}")
EOF

echo "== forced budget-bounded recluster =="
curl -sf -X POST "$BASE/recluster" | grep -q recluster_generation
python3 - "$BASE" <<'EOF'
import json, sys, time, urllib.request
base = sys.argv[1]
req = urllib.request.Request(f"{base}/recluster", data=b"", method="POST")
with urllib.request.urlopen(req, timeout=10) as resp:
    forced = json.loads(resp.read())["recluster_generation"]
for _ in range(100):
    with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
        stats = json.loads(resp.read())
    if stats["generation"] >= forced:
        print(f"forced recluster {forced} installed")
        break
    time.sleep(0.2)
else:
    raise SystemExit(f"forced recluster {forced} never installed: {stats}")
EOF

echo "== health stayed serving =="
HEALTH=$(curl -sf "$BASE/healthz")
echo "healthz: $HEALTH"
echo "$HEALTH" | grep -Eq 'ok|degraded'

echo "== typed rejection leaves the service serving =="
STATUS=$(curl -s -o "$OUT_DIR/reject.json" -w '%{http_code}' -X POST \
    -d '{"points": [[1.0, 2.0, 3.0]]}' "$BASE/ingest")
[ "$STATUS" = "422" ] || { echo "expected 422 for a 3-d point, got $STATUS" >&2; exit 1; }
grep -q rejected "$OUT_DIR/reject.json"
curl -sf "$BASE/label?point=0.0,0.0" | grep -q label

echo "== serve.* metrics are exported =="
curl -sf "$BASE/metrics" > "$OUT_DIR/metrics.txt"
grep -q 'serve_ingest_points' "$OUT_DIR/metrics.txt"
grep -q 'serve_recluster_started' "$OUT_DIR/metrics.txt"

echo "== clean shutdown via POST /shutdown =="
curl -sf -X POST -d '' "$BASE/shutdown" | grep -q "shutting down"
for i in $(seq 1 50); do
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        break
    fi
    if [ "$i" -eq 50 ]; then
        echo "service did not exit after /shutdown" >&2
        exit 1
    fi
    sleep 0.2
done
trap - EXIT
grep -q "bye" "$OUT_DIR/serve.log"
echo "service exited cleanly"

echo "== ingest-throughput bench emits machine-readable BENCH_pr8.json =="
./target/release/ingest_throughput --n 4000 --stream 4000 --k 80 \
    --out "$OUT_DIR/bench_pr8.json"
python3 - "$OUT_DIR/bench_pr8.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["bench"] == "pr8_ingest_throughput"
modes = {r["mode"] for r in doc["runs"]}
assert {"absorb", "http_ingest"} <= modes, modes
assert all(r["elapsed_s"] > 0 and r["points_per_s"] > 0 for r in doc["runs"])
assert doc["recluster"]["elapsed_s"] > 0
print("BENCH_pr8.json OK:", ", ".join(sorted(modes)))
EOF

echo "== serve smoke: all checks passed =="
