#!/usr/bin/env bash
# Telemetry smoke test: run a real figure with event tracing and the live
# db-obsd endpoint, scrape /healthz, /metrics and /trace (including four
# concurrent scrapers), validate the trace artifact, then check bench-diff
# both ways: it must pass against the checked-in report with a generous
# tolerance, and it must FAIL against a synthetically slowed copy.
#
# Usage: scripts/telemetry_smoke.sh [OUT_DIR]
# The trace JSON artifacts land in OUT_DIR (default: telemetry-artifacts/).
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-telemetry-artifacts}"
ADDR="127.0.0.1:9898"
BASE="http://$ADDR"
mkdir -p "$OUT_DIR"

echo "== build =="
cargo build --release -p db-bench

echo "== figures run with --serve + --trace-out =="
DB_TRACE=1 cargo run --release -p db-bench --bin figures -- \
    --scale quick --out "$OUT_DIR" \
    --serve "$ADDR" --serve-linger 20 \
    --trace-out "$OUT_DIR/figures.trace.json" fig6 \
    > "$OUT_DIR/figures.log" 2>&1 &
FIGURES_PID=$!
trap 'kill "$FIGURES_PID" 2>/dev/null || true' EXIT

echo "== wait for /healthz =="
for i in $(seq 1 60); do
    if curl -sf --max-time 2 "$BASE/healthz" | grep -q ok; then
        break
    fi
    if ! kill -0 "$FIGURES_PID" 2>/dev/null; then
        echo "figures exited before serving:" >&2
        cat "$OUT_DIR/figures.log" >&2
        exit 1
    fi
    if [ "$i" -eq 60 ]; then
        echo "telemetry endpoint never came up" >&2
        exit 1
    fi
    sleep 1
done

echo "== 4 concurrent /metrics scrapes during the run =="
SCRAPE_PIDS=()
for i in 1 2 3 4; do
    (
        for _ in $(seq 1 10); do
            curl -sf --max-time 5 "$BASE/metrics" > "$OUT_DIR/metrics.$i.txt"
            sleep 0.2
        done
    ) &
    SCRAPE_PIDS+=("$!")
done
for pid in "${SCRAPE_PIDS[@]}"; do
    wait "$pid"
done
grep -q '^# TYPE' "$OUT_DIR/metrics.1.txt"
grep -q '_bucket{le="+Inf"}' "$OUT_DIR/metrics.1.txt"
echo "metrics exposition looks sane"

echo "== /trace during the run =="
curl -sf --max-time 30 "$BASE/trace" > "$OUT_DIR/live.trace.json"
python3 - "$OUT_DIR/live.trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert isinstance(events, list) and events, "live trace has no events"
assert all(e["ph"] in ("B", "E", "i") for e in events)
print(f"live trace OK: {len(events)} events")
EOF

echo "== wait for figures to finish =="
wait "$FIGURES_PID"
trap - EXIT
python3 - "$OUT_DIR/figures.trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
names = {e["name"] for e in events}
for expected in ("pipeline.run", "pipeline.compression", "pipeline.start"):
    assert expected in names, f"{expected} missing from the exported trace"
print(f"exported trace OK: {len(events)} events, {len(names)} distinct names")
EOF

echo "== bench-diff: fresh quick run vs checked-in report (generous tolerance) =="
DB_TRACE=1 cargo run --release -p db-bench --bin paper_pipelines -- \
    --scale quick --out "$OUT_DIR/bench_new.json" \
    --trace-out "$OUT_DIR/bench.trace.json" > "$OUT_DIR/bench.log" 2>&1
# The checked-in report was measured at the default scale on other
# hardware; the quick run is strictly smaller, so with a wide tolerance
# this must pass (improvements never fail the diff).
cargo run --release -p db-bench --bin bench-diff -- \
    BENCH_pr3.json "$OUT_DIR/bench_new.json" --tolerance 10 --floor-s 0.05

echo "== bench-diff: synthetic 2x slowdown must FAIL =="
python3 - BENCH_pr3.json "$OUT_DIR/bench_slow.json" <<'EOF'
import json, sys
def slow(node):
    if isinstance(node, dict):
        return {k: (v * 2 if k.endswith("_s") and isinstance(v, (int, float)) else slow(v))
                for k, v in node.items()}
    if isinstance(node, list):
        return [slow(v) for v in node]
    return node
json.dump(slow(json.load(open(sys.argv[1]))), open(sys.argv[2], "w"), indent=2)
EOF
if cargo run --release -p db-bench --bin bench-diff -- \
    BENCH_pr3.json "$OUT_DIR/bench_slow.json"; then
    echo "bench-diff failed to flag a 2x slowdown" >&2
    exit 1
fi
echo "bench-diff correctly rejected the slowdown"

echo "== telemetry smoke: all checks passed =="
