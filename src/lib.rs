//! Umbrella crate for the Data Bubbles reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for documentation:
//!
//! * [`data_bubbles`] — the paper's contribution (Data Bubbles + pipelines).
//! * [`db_optics`] — OPTICS and DBSCAN.
//! * [`db_birch`] — BIRCH CF-trees.
//! * [`db_sampling`] — sampling + NN-classification compression.
//! * [`db_hierarchical`] — single-link / agglomerative baselines, k-means.
//! * [`db_spatial`] — datasets, metrics and spatial indexes.
//! * [`db_datagen`] — the paper's synthetic workloads (DS1, DS2, …).
//! * [`db_eval`] — confusion matrices and clustering quality measures.

#![warn(missing_docs)]

pub use data_bubbles;
pub use db_birch;
pub use db_datagen;
pub use db_eval;
pub use db_hierarchical;
pub use db_optics;
pub use db_sampling;
pub use db_spatial;
