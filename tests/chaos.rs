//! Chaos suite: every adversarial corpus through every compression
//! backend, asserting the robustness contract — no panics, typed errors
//! for invalid input, fully finite output (no NaN anywhere; the ∞
//! UNDEFINED sentinel for walk starts and non-core objects is legitimate)
//! for valid input.

use std::panic::{catch_unwind, AssertUnwindSafe};

use data_bubbles::pipeline::{
    run_pipeline, Compressor, PipelineConfig, PipelineError, PipelineOutput, Recovery,
};
use db_birch::BirchParams;
use db_datagen::adversarial::all_corpora;
use db_optics::OpticsParams;
use db_spatial::{Dataset, SpatialError};

fn compressors() -> Vec<(&'static str, Compressor)> {
    vec![
        ("sample", Compressor::Sample { seed: 17 }),
        ("birch", Compressor::Birch(BirchParams::default())),
    ]
}

const RECOVERIES: [Recovery; 3] = [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles];

/// No NaN may survive anywhere in a successful output; reachability and
/// core-distance may be the ∞ sentinel, everything else must be finite.
fn assert_output_finite(out: &PipelineOutput, ctx: &str, failures: &mut Vec<String>) {
    for e in &out.rep_ordering.entries {
        if e.reachability.is_nan() || e.core_distance.is_nan() {
            failures.push(format!("{ctx}: NaN in representative ordering entry {}", e.id));
        }
    }
    if let Some(expanded) = &out.expanded {
        for e in &expanded.entries {
            if e.reachability.is_nan() || e.core_estimate.is_nan() {
                failures.push(format!("{ctx}: NaN in expanded entry for object {}", e.object));
            }
        }
    }
}

#[test]
fn adversarial_corpora_never_panic_and_never_emit_nan() {
    let mut failures: Vec<String> = Vec::new();
    for corpus in all_corpora(42) {
        // Stage 1: the ingest boundary. Invalid corpora must be rejected
        // here with a typed SpatialError; that is the graceful outcome.
        let ds = match corpus.build() {
            Ok(ds) => ds,
            Err(SpatialError::NonFiniteCoordinate { .. }) if corpus.has_non_finite() => continue,
            Err(SpatialError::DimensionMismatch { .. }) if corpus.has_ragged_rows() => continue,
            Err(e) => {
                failures.push(format!("{}: unexpected ingest rejection {e}", corpus.name));
                continue;
            }
        };
        if corpus.has_non_finite() || corpus.has_ragged_rows() {
            failures.push(format!("{}: invalid corpus passed ingest validation", corpus.name));
            continue;
        }
        // Stage 2: the pipeline itself, over both backends and all three
        // recovery modes. Typed errors are acceptable; panics and NaN are not.
        let k = (ds.len() / 4).clamp(1, 32);
        for (cname, compressor) in compressors() {
            for recovery in RECOVERIES {
                let ctx = format!("{} x {cname} x {recovery:?}", corpus.name);
                let cfg = PipelineConfig::new(
                    k,
                    compressor.clone(),
                    recovery,
                    OpticsParams { eps: f64::INFINITY, min_pts: 5 },
                );
                match catch_unwind(AssertUnwindSafe(|| run_pipeline(&ds, &cfg))) {
                    Err(_) => failures.push(format!("{ctx}: PANICKED")),
                    Ok(Ok(out)) => assert_output_finite(&out, &ctx, &mut failures),
                    Ok(Err(PipelineError::Internal(what))) => {
                        failures.push(format!("{ctx}: internal invariant violated: {what}"))
                    }
                    Ok(Err(_typed)) => {} // graceful typed rejection
                }
            }
        }
    }
    assert!(failures.is_empty(), "chaos failures:\n{}", failures.join("\n"));
}

#[test]
fn empty_corpus_gets_the_empty_dataset_error() {
    let ds = db_datagen::adversarial::empty(0).build().unwrap();
    for (_, compressor) in compressors() {
        let err = run_pipeline(
            &ds,
            &PipelineConfig::new(
                4,
                compressor,
                Recovery::Bubbles,
                OpticsParams { eps: f64::INFINITY, min_pts: 5 },
            ),
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::EmptyDataset);
    }
}

#[test]
fn nan_smuggled_past_ingest_is_caught_by_the_pipeline() {
    // `from_flat_unchecked` deliberately bypasses ingest validation; the
    // pipeline's defensive re-check must produce a typed error, not a
    // panic or NaN-poisoned output.
    let mut flat = Vec::new();
    for i in 0..40 {
        flat.extend_from_slice(&[i as f64, (i % 7) as f64]);
    }
    flat[13] = f64::NAN;
    let ds = Dataset::from_flat_unchecked(2, flat);
    for (_, compressor) in compressors() {
        for recovery in RECOVERIES {
            let err = run_pipeline(
                &ds,
                &PipelineConfig::new(
                    8,
                    compressor.clone(),
                    recovery,
                    OpticsParams { eps: f64::INFINITY, min_pts: 5 },
                ),
            )
            .unwrap_err();
            assert_eq!(
                err,
                PipelineError::Spatial(SpatialError::NonFiniteCoordinate { point: 6, coord: 1 })
            );
        }
    }
}

#[test]
fn absorb_of_adversarial_corpora_rejects_typed_and_leaves_stats_untouched() {
    // The streaming absorb boundary (ISSUE 8): feeding every adversarial
    // corpus into a live compression must never panic; invalid rows are
    // rejected with a typed SpatialError, and a rejection leaves the
    // compression bit-for-bit unchanged (no half-absorbed batch, no
    // poisoned representative).
    use db_sampling::{compress_by_sampling, IncrementalCompression};

    let base = {
        let params = db_datagen::SeparatedBlobsParams { n: 120, ..Default::default() };
        db_datagen::separated_blobs(&params, 9).data
    };
    let compressed = compress_by_sampling(&base, 12, 9).unwrap();
    let mut failures: Vec<String> = Vec::new();

    for corpus in all_corpora(42) {
        let mut inc = IncrementalCompression::from_sample(&compressed);
        let stats_before = inc.stats().to_vec();
        let assignment_before = inc.assignment().to_vec();

        // Row-by-row absorb: each invalid row is its own typed rejection.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rejected = 0usize;
            for row in &corpus.rows {
                match inc.try_absorb(row) {
                    Ok(_) => {}
                    // Any typed SpatialError is a graceful rejection.
                    Err(_) => rejected += 1,
                }
            }
            rejected
        }));
        let rejected = match outcome {
            Ok(r) => r,
            Err(_) => {
                failures.push(format!("{}: try_absorb PANICKED", corpus.name));
                continue;
            }
        };
        if (corpus.has_non_finite() || corpus.has_ragged_rows()) && rejected == 0 {
            failures.push(format!("{}: invalid rows passed the absorb boundary", corpus.name));
        }
        // Absorbed stats must stay fully finite.
        if inc
            .stats()
            .iter()
            .any(|cf| cf.mean().iter().any(|m| !m.is_finite()) || !cf.ssd().is_finite())
        {
            failures.push(format!("{}: non-finite CF after absorb", corpus.name));
        }

        // Batch absorb of an invalid corpus is atomic: a typed error and
        // a bit-for-bit untouched compression.
        if corpus.has_non_finite() && !corpus.has_ragged_rows() {
            if let Ok(ds) = catch_unwind(AssertUnwindSafe(|| corpus.build())).unwrap_or_else(|_| {
                failures.push(format!("{}: build PANICKED", corpus.name));
                Err(SpatialError::NonFiniteCoordinate { point: 0, coord: 0 })
            }) {
                // Corpus validated clean despite has_non_finite — covered
                // by the main chaos test; skip.
                drop(ds);
            } else {
                // Smuggle the rows past validation to hit the absorb-side
                // check directly.
                let dim = corpus.dim;
                let flat: Vec<f64> =
                    corpus.rows.iter().filter(|r| r.len() == dim).flatten().copied().collect();
                let smuggled = Dataset::from_flat_unchecked(dim, flat);
                let mut atomic = IncrementalCompression::from_sample(&compressed);
                match catch_unwind(AssertUnwindSafe(|| atomic.try_absorb_all(&smuggled))) {
                    Err(_) => failures.push(format!("{}: try_absorb_all PANICKED", corpus.name)),
                    Ok(Ok(_)) => {
                        failures.push(format!("{}: non-finite batch absorbed whole", corpus.name))
                    }
                    Ok(Err(SpatialError::NonFiniteCoordinate { .. })) => {
                        if atomic.stats() != stats_before.as_slice()
                            || atomic.assignment() != assignment_before.as_slice()
                        {
                            failures.push(format!(
                                "{}: rejected batch still mutated the compression",
                                corpus.name
                            ));
                        }
                    }
                    Ok(Err(e)) => {
                        failures.push(format!("{}: unexpected absorb error {e}", corpus.name))
                    }
                }
            }
        }
    }
    assert!(failures.is_empty(), "absorb chaos failures:\n{}", failures.join("\n"));
}

#[test]
fn far_offset_corpus_keeps_finite_nonzero_structure() {
    // The 1e8-offset corpus is the catastrophic-cancellation trap: with
    // sum-of-squares statistics the extents collapse or go NaN. The stable
    // representation must keep both blobs' bubbles finite, and at least
    // one multi-point bubble must report a strictly positive extent.
    let ds = db_datagen::adversarial::far_offset_clusters(42).build().unwrap();
    for (cname, compressor) in compressors() {
        let out = run_pipeline(
            &ds,
            &PipelineConfig::new(
                16,
                compressor,
                Recovery::Bubbles,
                OpticsParams { eps: f64::INFINITY, min_pts: 5 },
            ),
        )
        .unwrap();
        let mut failures = Vec::new();
        assert_output_finite(&out, cname, &mut failures);
        assert!(failures.is_empty(), "{failures:?}");
        let finite_reach =
            out.rep_ordering.entries.iter().filter(|e| e.reachability.is_finite()).count();
        assert!(finite_reach > 0, "{cname}: no finite reachabilities at 1e8 offset");
    }
}
