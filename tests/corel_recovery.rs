//! Integration test of the paper's §9.3 scenario: two tiny dense clusters
//! embedded in a large near-uniform body must survive 68× compression via
//! sampling-based Data Bubbles.

use data_bubbles::pipeline::optics_sa_bubbles;
use db_datagen::{corel_like, CorelParams};
use db_optics::OpticsParams;
use std::collections::HashMap;

fn cluster_purity(labels: &[i32], truth: &[i32], cluster: i32) -> (usize, usize) {
    // (members of the truth cluster sharing the majority extracted label,
    //  size of that extracted label)
    let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == cluster).collect();
    let mut votes: HashMap<i32, usize> = HashMap::new();
    for &i in &members {
        if labels[i] >= 0 {
            *votes.entry(labels[i]).or_insert(0) += 1;
        }
    }
    let Some((&label, &count)) = votes.iter().max_by_key(|&(_, &c)| c) else {
        return (0, 0);
    };
    let label_size = labels.iter().filter(|&&l| l == label).count();
    (count, label_size)
}

#[test]
fn sa_bubbles_recover_both_tiny_clusters() {
    let params = CorelParams { n: 12_000, dim: 9, tiny_cluster_size: 120 };
    let data = corel_like(&params, 77);
    let k = data.len() / 68;
    let out =
        optics_sa_bubbles(&data.data, k, 77, &OpticsParams { eps: f64::INFINITY, min_pts: 10 })
            .unwrap();
    let labels = out.expanded.as_ref().unwrap().extract_dbscan(0.25);

    for cluster in 0..2 {
        let (recovered, label_size) = cluster_purity(&labels, &data.labels, cluster);
        assert!(
            recovered >= 96, // >= 80% of 120
            "tiny cluster {cluster}: only {recovered}/120 members recovered"
        );
        assert!(
            label_size <= 3 * 120,
            "tiny cluster {cluster} drowned in a huge extracted cluster ({label_size})"
        );
    }
}

#[test]
fn tiny_clusters_stay_separate() {
    // "no objects switched from one cluster to the other one" (Fig. 22).
    let params = CorelParams { n: 12_000, dim: 9, tiny_cluster_size: 120 };
    let data = corel_like(&params, 78);
    let k = data.len() / 68;
    let out =
        optics_sa_bubbles(&data.data, k, 78, &OpticsParams { eps: f64::INFINITY, min_pts: 10 })
            .unwrap();
    let labels = out.expanded.as_ref().unwrap().extract_dbscan(0.25);

    // Majority labels of the two truth clusters must differ.
    let maj = |cluster: i32| {
        let mut votes: HashMap<i32, usize> = HashMap::new();
        for (&truth, &label) in data.labels.iter().zip(&labels) {
            if truth == cluster && label >= 0 {
                *votes.entry(label).or_insert(0) += 1;
            }
        }
        votes.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l)
    };
    let (a, b) = (maj(0), maj(1));
    assert!(a.is_some() && b.is_some(), "a tiny cluster disappeared entirely");
    assert_ne!(a, b, "the two tiny clusters were merged");
}
