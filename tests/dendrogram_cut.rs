//! Oracle cross-check for `Dendrogram::cut_at_distance` (ISSUE 8
//! satellite): single-link theory says the clusters at height `h` are the
//! connected components of the threshold graph with an edge wherever
//! `dist(i, j) <= h`. The fixed cut (apply **all** qualifying merges, not
//! a `take_while` prefix) must agree with a brute-force component
//! computation at every interesting height.

use db_oracle::exact_single_link_points;
use db_spatial::{euclidean, Dataset};

fn blobs(n: usize, seed: u64) -> Dataset {
    let params = db_datagen::SeparatedBlobsParams { n, ..Default::default() };
    db_datagen::separated_blobs(&params, seed).data
}

/// Brute-force single-link clusters at height `h`: connected components
/// of the `dist <= h` threshold graph, labelled densely in first-point
/// order (the same label convention the dendrogram cut uses).
fn threshold_components(ds: &Dataset, h: f64) -> Vec<i32> {
    let n = ds.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in (i + 1)..n {
            // NaN-safe: only an affirmative `<= h` connects.
            if euclidean(ds.point(i), ds.point(j)) <= h {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut labels = vec![-1i32; n];
    let mut next = 0i32;
    let mut by_root = std::collections::HashMap::new();
    for (i, label) in labels.iter_mut().enumerate() {
        let r = find(&mut parent, i);
        *label = *by_root.entry(r).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
    }
    labels
}

/// Same partition up to label names.
fn assert_same_partition(a: &[i32], b: &[i32], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    let mut map = std::collections::HashMap::new();
    let mut rev = std::collections::HashMap::new();
    for (x, y) in a.iter().zip(b) {
        assert_eq!(*map.entry(*x).or_insert(*y), *y, "{ctx}: partitions differ");
        assert_eq!(*rev.entry(*y).or_insert(*x), *x, "{ctx}: partitions differ");
    }
}

#[test]
fn cut_at_distance_agrees_with_threshold_components() {
    for seed in [11, 29, 47] {
        let ds = blobs(60, seed);
        let dendrogram = exact_single_link_points(&ds);
        // Probe just below, at, and just above every merge height, plus
        // extremes.
        let mut heights: Vec<f64> = vec![0.0, f64::INFINITY];
        for m in dendrogram.merges() {
            heights.push(m.dist * (1.0 - 1e-12));
            heights.push(m.dist);
            heights.push(m.dist * (1.0 + 1e-12));
        }
        for h in heights {
            let cut = dendrogram.cut_at_distance(h);
            let components = threshold_components(&ds, h);
            assert_same_partition(&cut, &components, &format!("seed={seed} h={h}"));
        }
    }
}

#[test]
fn nan_height_is_all_singletons_for_oracle_dendrograms() {
    let ds = blobs(30, 3);
    let dendrogram = exact_single_link_points(&ds);
    let cut = dendrogram.cut_at_distance(f64::NAN);
    let expected: Vec<i32> = (0..ds.len() as i32).collect();
    assert_eq!(cut, expected, "NaN height must apply no merge");
    assert_same_partition(&cut, &threshold_components(&ds, f64::NAN), "NaN");
}
