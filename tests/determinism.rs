//! Bit-for-bit determinism of the threaded pipeline paths.
//!
//! The parallel classification, statistics accumulation and distance-matrix
//! build promise outputs identical to the sequential path for *every*
//! thread count. These tests pin that contract end to end: all six paper
//! pipelines run with 1, 2 and 4 worker threads and with the knob left to
//! available parallelism, and every run must equal the single-threaded
//! baseline exactly — same walk, same reachabilities to the last bit. A
//! second suite pins the matrix-backed `BubbleSpace` against the on-the-fly
//! evaluation on adversarial corpora.

use std::num::NonZeroUsize;
use std::time::Duration;

use data_bubbles::pipeline::{
    run_pipeline, CancelToken, Compressor, PipelineConfig, PipelineError, PipelineOutput, Recovery,
    RunBudget,
};
use db_birch::BirchParams;
use db_optics::OpticsParams;
use db_spatial::Dataset;

/// Two dense squares far apart — structured enough that the walk order,
/// core-distances and expansion all carry signal.
fn two_squares() -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..900 {
        let (x, y) = ((i % 30) as f64 * 0.3, (i / 30) as f64 * 0.3);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 150.0, y * 1.5]).unwrap();
    }
    ds
}

fn params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 12 }
}

fn assert_identical(base: &PipelineOutput, other: &PipelineOutput, ctx: &str) {
    assert_eq!(base.n_representatives, other.n_representatives, "{ctx}: representative count");
    assert_eq!(base.rep_ordering, other.rep_ordering, "{ctx}: rep ordering differs");
    assert_eq!(base.expanded, other.expanded, "{ctx}: expanded ordering differs");
}

fn six_pipelines(k: usize, seed: u64) -> Vec<(String, Compressor, Recovery)> {
    let mut out = Vec::new();
    for (cname, compressor) in
        [("SA", Compressor::Sample { seed }), ("CF", Compressor::Birch(BirchParams::default()))]
    {
        for recovery in [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles] {
            out.push((format!("OPTICS-{cname}-{recovery:?} k={k}"), compressor.clone(), recovery));
        }
    }
    out
}

#[test]
fn all_six_pipelines_are_thread_count_invariant() {
    let ds = two_squares();
    for (ctx, compressor, recovery) in six_pipelines(40, 7) {
        let mut cfg = PipelineConfig::new(40, compressor, recovery, params());
        cfg.threads = NonZeroUsize::new(1);
        let base = run_pipeline(&ds, &cfg).unwrap();
        for threads in [NonZeroUsize::new(2), NonZeroUsize::new(4), None] {
            cfg.threads = threads;
            let other = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(&base, &other, &format!("{ctx} threads={threads:?}"));
        }
    }
}

#[test]
fn matrix_backed_clustering_equals_on_the_fly() {
    // `matrix_max_k: 0` disables the precomputed matrix, forcing the
    // exhaustive scan-and-sort path; the outputs must not change by a bit.
    let corpora: Vec<(&str, Dataset)> = vec![
        ("two_squares", two_squares()),
        ("far_offset", db_datagen::adversarial::far_offset_clusters(42).build().unwrap()),
        ("duplicates", db_datagen::adversarial::zero_variance_duplicates(0).build().unwrap()),
        ("singletons", db_datagen::adversarial::singleton_flood(3).build().unwrap()),
    ];
    for (name, ds) in corpora {
        let k = (ds.len() / 8).clamp(2, 40);
        for (ctx, compressor, recovery) in six_pipelines(k, 11) {
            if recovery != Recovery::Bubbles {
                continue; // only the bubble variants build a BubbleSpace
            }
            let mut cfg = PipelineConfig::new(k, compressor, recovery, params());
            let with_matrix = run_pipeline(&ds, &cfg).unwrap();
            cfg.matrix_max_k = 0;
            let on_the_fly = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(&with_matrix, &on_the_fly, &format!("{name}: {ctx}"));
        }
    }
}

#[test]
fn thread_knob_composes_with_matrix_knob_on_adversarial_input() {
    // Both knobs together: every (threads, matrix) combination agrees on a
    // corpus built to stress distance ties (duplicates) — the regime where
    // an unstable sort or merge order would show first.
    let ds = db_datagen::adversarial::zero_variance_duplicates(0).build().unwrap();
    let k = (ds.len() / 8).clamp(2, 16);
    let mut cfg =
        PipelineConfig::new(k, Compressor::Sample { seed: 5 }, Recovery::Bubbles, params());
    cfg.threads = NonZeroUsize::new(1);
    let base = run_pipeline(&ds, &cfg).unwrap();
    for matrix_max_k in [0usize, usize::MAX] {
        for threads in [NonZeroUsize::new(1), NonZeroUsize::new(3), None] {
            cfg.matrix_max_k = matrix_max_k;
            cfg.threads = threads;
            let other = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(
                &base,
                &other,
                &format!("matrix_max_k={matrix_max_k} threads={threads:?}"),
            );
        }
    }
}

#[test]
fn an_armed_but_unfired_budget_changes_nothing() {
    // Supervision's determinism contract: arming a deadline, a matrix
    // byte cap that never binds, and a cancellation token that is never
    // cancelled must leave every one of the six variants bit-for-bit
    // identical to the unsupervised run.
    let ds = two_squares();
    for (ctx, compressor, recovery) in six_pipelines(40, 7) {
        let mut cfg = PipelineConfig::new(40, compressor, recovery, params());
        let base = run_pipeline(&ds, &cfg).unwrap();
        cfg.budget = RunBudget {
            deadline: Some(Duration::from_secs(3600)),
            max_matrix_bytes: Some(usize::MAX),
        };
        cfg.cancel = Some(CancelToken::new());
        let supervised = run_pipeline(&ds, &cfg).unwrap();
        assert_identical(&base, &supervised, &format!("{ctx} under an idle budget"));
    }
}

#[test]
fn mid_run_cancellation_is_typed_and_a_retry_is_bit_identical() {
    // A second thread flips the token while the pipeline runs. Whatever
    // phase the cancellation lands in, the run must stop with the typed
    // error — never a panic, never partial output — and an immediately
    // retried run (fresh token) must be bit-identical to the baseline.
    let ds = two_squares();
    for (ctx, compressor, recovery) in six_pipelines(40, 7) {
        let mut cfg = PipelineConfig::new(40, compressor, recovery, params());
        let base = run_pipeline(&ds, &cfg).unwrap();

        // Scan cancellation delays until one lands mid-run; a pre-
        // cancelled token (delay 0) guarantees at least one typed hit
        // even on a machine fast enough to outrun every sleep.
        let mut saw_cancelled = false;
        for delay_us in [0u64, 50, 200, 1000, 5000] {
            let token = CancelToken::new();
            cfg.cancel = Some(token.clone());
            let result = std::thread::scope(|s| {
                let canceller = s.spawn(move || {
                    if delay_us > 0 {
                        std::thread::sleep(Duration::from_micros(delay_us));
                    }
                    token.cancel();
                });
                if delay_us == 0 {
                    // Guarantee the flip lands before the first check.
                    canceller.join().expect("canceller thread");
                }
                run_pipeline(&ds, &cfg)
            });
            match result {
                Err(PipelineError::Cancelled { .. }) => saw_cancelled = true,
                // The run beat the cancel to the finish line; that race
                // is legal, and the output must still be untouched.
                Ok(out) => assert_identical(&base, &out, &format!("{ctx} outran cancel")),
                other => panic!("{ctx}: expected Cancelled or success, got {other:?}"),
            }
        }
        assert!(saw_cancelled, "{ctx}: the pre-cancelled token must yield a typed Cancelled");

        // Retry with a fresh, uncancelled token: bit-identical.
        cfg.cancel = Some(CancelToken::new());
        let retried = run_pipeline(&ds, &cfg).unwrap();
        assert_identical(&base, &retried, &format!("{ctx} retried after cancellation"));
    }
}

#[test]
fn explicit_thread_counts_exceeding_the_machine_still_agree() {
    // Oversubscription (more threads than cores, more than work chunks)
    // must not change anything either.
    let ds = two_squares();
    let mut cfg =
        PipelineConfig::new(25, Compressor::Sample { seed: 3 }, Recovery::Bubbles, params());
    cfg.threads = NonZeroUsize::new(1);
    let base = run_pipeline(&ds, &cfg).unwrap();
    cfg.threads = NonZeroUsize::new(64);
    let wide = run_pipeline(&ds, &cfg).unwrap();
    assert_identical(&base, &wide, "threads=64");
}
