//! Bit-for-bit determinism of the threaded pipeline paths.
//!
//! The parallel classification, statistics accumulation and distance-matrix
//! build promise outputs identical to the sequential path for *every*
//! thread count. These tests pin that contract end to end: all six paper
//! pipelines run with 1, 2 and 4 worker threads and with the knob left to
//! available parallelism, and every run must equal the single-threaded
//! baseline exactly — same walk, same reachabilities to the last bit. A
//! second suite pins the matrix-backed `BubbleSpace` against the on-the-fly
//! evaluation on adversarial corpora.

use std::num::NonZeroUsize;

use data_bubbles::pipeline::{run_pipeline, Compressor, PipelineConfig, PipelineOutput, Recovery};
use db_birch::BirchParams;
use db_optics::OpticsParams;
use db_spatial::Dataset;

/// Two dense squares far apart — structured enough that the walk order,
/// core-distances and expansion all carry signal.
fn two_squares() -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..900 {
        let (x, y) = ((i % 30) as f64 * 0.3, (i / 30) as f64 * 0.3);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 150.0, y * 1.5]).unwrap();
    }
    ds
}

fn params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 12 }
}

fn assert_identical(base: &PipelineOutput, other: &PipelineOutput, ctx: &str) {
    assert_eq!(base.n_representatives, other.n_representatives, "{ctx}: representative count");
    assert_eq!(base.rep_ordering, other.rep_ordering, "{ctx}: rep ordering differs");
    assert_eq!(base.expanded, other.expanded, "{ctx}: expanded ordering differs");
}

fn six_pipelines(k: usize, seed: u64) -> Vec<(String, Compressor, Recovery)> {
    let mut out = Vec::new();
    for (cname, compressor) in
        [("SA", Compressor::Sample { seed }), ("CF", Compressor::Birch(BirchParams::default()))]
    {
        for recovery in [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles] {
            out.push((format!("OPTICS-{cname}-{recovery:?} k={k}"), compressor.clone(), recovery));
        }
    }
    out
}

#[test]
fn all_six_pipelines_are_thread_count_invariant() {
    let ds = two_squares();
    for (ctx, compressor, recovery) in six_pipelines(40, 7) {
        let mut cfg = PipelineConfig::new(40, compressor, recovery, params());
        cfg.threads = NonZeroUsize::new(1);
        let base = run_pipeline(&ds, &cfg).unwrap();
        for threads in [NonZeroUsize::new(2), NonZeroUsize::new(4), None] {
            cfg.threads = threads;
            let other = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(&base, &other, &format!("{ctx} threads={threads:?}"));
        }
    }
}

#[test]
fn matrix_backed_clustering_equals_on_the_fly() {
    // `matrix_max_k: 0` disables the precomputed matrix, forcing the
    // exhaustive scan-and-sort path; the outputs must not change by a bit.
    let corpora: Vec<(&str, Dataset)> = vec![
        ("two_squares", two_squares()),
        ("far_offset", db_datagen::adversarial::far_offset_clusters(42).build().unwrap()),
        ("duplicates", db_datagen::adversarial::zero_variance_duplicates(0).build().unwrap()),
        ("singletons", db_datagen::adversarial::singleton_flood(3).build().unwrap()),
    ];
    for (name, ds) in corpora {
        let k = (ds.len() / 8).clamp(2, 40);
        for (ctx, compressor, recovery) in six_pipelines(k, 11) {
            if recovery != Recovery::Bubbles {
                continue; // only the bubble variants build a BubbleSpace
            }
            let mut cfg = PipelineConfig::new(k, compressor, recovery, params());
            let with_matrix = run_pipeline(&ds, &cfg).unwrap();
            cfg.matrix_max_k = 0;
            let on_the_fly = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(&with_matrix, &on_the_fly, &format!("{name}: {ctx}"));
        }
    }
}

#[test]
fn thread_knob_composes_with_matrix_knob_on_adversarial_input() {
    // Both knobs together: every (threads, matrix) combination agrees on a
    // corpus built to stress distance ties (duplicates) — the regime where
    // an unstable sort or merge order would show first.
    let ds = db_datagen::adversarial::zero_variance_duplicates(0).build().unwrap();
    let k = (ds.len() / 8).clamp(2, 16);
    let mut cfg =
        PipelineConfig::new(k, Compressor::Sample { seed: 5 }, Recovery::Bubbles, params());
    cfg.threads = NonZeroUsize::new(1);
    let base = run_pipeline(&ds, &cfg).unwrap();
    for matrix_max_k in [0usize, usize::MAX] {
        for threads in [NonZeroUsize::new(1), NonZeroUsize::new(3), None] {
            cfg.matrix_max_k = matrix_max_k;
            cfg.threads = threads;
            let other = run_pipeline(&ds, &cfg).unwrap();
            assert_identical(
                &base,
                &other,
                &format!("matrix_max_k={matrix_max_k} threads={threads:?}"),
            );
        }
    }
}

#[test]
fn explicit_thread_counts_exceeding_the_machine_still_agree() {
    // Oversubscription (more threads than cores, more than work chunks)
    // must not change anything either.
    let ds = two_squares();
    let mut cfg =
        PipelineConfig::new(25, Compressor::Sample { seed: 3 }, Recovery::Bubbles, params());
    cfg.threads = NonZeroUsize::new(1);
    let base = run_pipeline(&ds, &cfg).unwrap();
    cfg.threads = NonZeroUsize::new(64);
    let wide = run_pipeline(&ds, &cfg).unwrap();
    assert_identical(&base, &wide, "threads=64");
}
