//! Property-based integration tests: cross-crate invariants that must hold
//! for arbitrary data and parameters.

use data_bubbles::pipeline::{
    optics_sa_bubbles, optics_sa_weighted, run_pipeline, Compressor, PipelineConfig, Recovery,
};
use data_bubbles::{bubble_distance, BubbleSpace, DataBubble};
use db_birch::{birch, BirchParams, Cf};
use db_optics::{optics, OpticsParams, OpticsSpace};
use db_spatial::Dataset;
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim), 10..max_n).prop_map(
        move |rows| {
            let mut ds = Dataset::new(dim).unwrap();
            for r in &rows {
                ds.push(r).unwrap();
            }
            ds
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The expanded ordering of any expanding pipeline is a permutation of
    /// the original object ids, regardless of data, k or seed.
    #[test]
    fn expansion_is_a_permutation(
        ds in dataset_strategy(120, 2),
        k in 2usize..20,
        seed in 0u64..1000,
    ) {
        let k = k.min(ds.len());
        let out = optics_sa_bubbles(
            &ds, k, seed, &OpticsParams { eps: f64::INFINITY, min_pts: 3 },
        ).unwrap();
        let mut order = out.expanded.unwrap().order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..ds.len() as u32).collect::<Vec<_>>());
    }

    /// BIRCH never loses or duplicates points, for any target k.
    #[test]
    fn birch_preserves_point_counts(
        ds in dataset_strategy(150, 3),
        k in 1usize..40,
    ) {
        let cfs = birch(&ds, k, &BirchParams::default());
        prop_assert!(cfs.len() <= k.max(1));
        let total: u64 = cfs.iter().map(Cf::n).sum();
        prop_assert_eq!(total, ds.len() as u64);
        for cf in &cfs {
            prop_assert!(cf.n() >= 1);
            prop_assert!(cf.diameter() >= 0.0);
        }
    }

    /// The bubble distance (Def. 6) is symmetric, non-negative, and zero
    /// exactly for the same object.
    #[test]
    fn bubble_distance_axioms(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        na in 1u64..1000, nb in 1u64..1000,
        ea in 0.0f64..50.0, eb in 0.0f64..50.0,
    ) {
        let a = DataBubble::new(vec![ax, ay], na, ea);
        let b = DataBubble::new(vec![bx, by], nb, eb);
        let dab = bubble_distance(&a, &b, false);
        let dba = bubble_distance(&b, &a, false);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry violated: {dab} vs {dba}");
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(bubble_distance(&a, &a, true), 0.0);
    }

    /// OPTICS on bubbles visits every bubble exactly once and carries the
    /// total weight through.
    #[test]
    fn bubble_optics_is_a_weighted_permutation(
        ds in dataset_strategy(100, 2),
        k in 2usize..15,
        min_pts in 1usize..20,
    ) {
        let k = k.min(ds.len());
        let c = db_sampling::compress_by_sampling(&ds, k, 3).unwrap();
        let bubbles: Vec<DataBubble> = c.stats.iter().map(DataBubble::from_cf).collect();
        let space = BubbleSpace::new(bubbles);
        let o = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts });
        prop_assert_eq!(o.len(), k);
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..k).collect::<Vec<_>>());
        prop_assert_eq!(o.total_weight(), ds.len() as u64);
    }

    /// Definition 7 invariant: a bubble's core distance is finite whenever
    /// the whole space holds at least MinPts original objects (ε = ∞).
    #[test]
    fn core_distance_defined_iff_enough_weight(
        ds in dataset_strategy(60, 2),
        k in 2usize..10,
    ) {
        let k = k.min(ds.len());
        let c = db_sampling::compress_by_sampling(&ds, k, 9).unwrap();
        let bubbles: Vec<DataBubble> = c.stats.iter().map(DataBubble::from_cf).collect();
        let space = BubbleSpace::new(bubbles);
        let mut nb = Vec::new();
        for i in 0..k {
            space.neighborhood(i, f64::INFINITY, &mut nb);
            // Total weight == dataset size >= 10 > MinPts=5.
            prop_assert!(space.core_distance(i, 5, &nb).is_some());
            // And undefined when MinPts exceeds the dataset size.
            prop_assert!(space.core_distance(i, ds.len() + 1, &nb).is_none());
        }
    }

    /// All six pipeline configurations succeed on arbitrary inputs and
    /// report consistent representative counts.
    #[test]
    fn every_pipeline_variant_runs(
        ds in dataset_strategy(80, 2),
        seed in 0u64..100,
    ) {
        let k = 8.min(ds.len());
        for compressor in [Compressor::Sample { seed }, Compressor::Birch(BirchParams::default())] {
            for recovery in [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles] {
                let out = run_pipeline(&ds, &PipelineConfig {
                    k,
                    compressor: compressor.clone(),
                    recovery,
                    optics: OpticsParams { eps: f64::INFINITY, min_pts: 3 },
                }).unwrap();
                prop_assert!(out.n_representatives >= 1);
                prop_assert!(out.n_representatives <= k);
                prop_assert_eq!(out.rep_ordering.len(), out.n_representatives);
                prop_assert_eq!(out.expanded.is_some(), recovery != Recovery::Naive);
                if let Some(x) = &out.expanded {
                    prop_assert_eq!(x.len(), ds.len());
                }
            }
        }
    }

    /// Weighted expansion preserves the first-member reachability of every
    /// representative (the jump structure of the rep ordering survives).
    #[test]
    fn weighted_expansion_preserves_jumps(
        ds in dataset_strategy(100, 2),
        seed in 0u64..100,
    ) {
        let k = 10.min(ds.len());
        let out = optics_sa_weighted(
            &ds, k, seed, &OpticsParams { eps: f64::INFINITY, min_pts: 2 },
        ).unwrap();
        let expanded = out.expanded.unwrap();
        // Each rep's first member carries exactly the rep's reachability.
        let mut pos = 0usize;
        let mut members = vec![0usize; k];
        for &a in &db_sampling::compress_by_sampling(&ds, k, seed).unwrap().assignment {
            members[a as usize] += 1;
        }
        for e in &out.rep_ordering.entries {
            let first = &expanded.entries[pos];
            prop_assert!(
                first.reachability == e.reachability
                    || (first.reachability.is_infinite() && e.reachability.is_infinite())
            );
            pos += members[e.id];
        }
        prop_assert_eq!(pos, ds.len());
    }
}
