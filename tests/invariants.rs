//! Randomized integration tests: cross-crate invariants that must hold
//! for many seeded random datasets and parameters.

use data_bubbles::pipeline::{
    optics_sa_bubbles, optics_sa_weighted, run_pipeline, Compressor, PipelineConfig, Recovery,
};
use data_bubbles::{bubble_distance, BubbleSpace, DataBubble};
use db_birch::{birch, BirchParams, Cf};
use db_optics::{optics, OpticsParams, OpticsSpace};
use db_rng::Rng;
use db_spatial::Dataset;

const CASES: u64 = 32;

fn random_dataset(rng: &mut Rng, max_n: usize, dim: usize) -> Dataset {
    let n = rng.gen_range(10..max_n);
    let mut ds = Dataset::new(dim).unwrap();
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.gen_f64(-100.0, 100.0);
        }
        ds.push(&row).unwrap();
    }
    ds
}

/// The expanded ordering of any expanding pipeline is a permutation of the
/// original object ids, regardless of data, k or seed.
#[test]
fn expansion_is_a_permutation() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(case);
        let ds = random_dataset(&mut rng, 120, 2);
        let k = rng.gen_range(2..20).min(ds.len());
        let seed = rng.gen_range(0..1000) as u64;
        let out = optics_sa_bubbles(&ds, k, seed, &OpticsParams { eps: f64::INFINITY, min_pts: 3 })
            .unwrap();
        let mut order = out.expanded.unwrap().order();
        order.sort_unstable();
        assert_eq!(order, (0..ds.len() as u32).collect::<Vec<_>>(), "case {case}");
    }
}

/// BIRCH never loses or duplicates points, for any target k.
#[test]
fn birch_preserves_point_counts() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(100 + case);
        let ds = random_dataset(&mut rng, 150, 3);
        let k = rng.gen_range(1..40);
        let cfs = birch(&ds, k, &BirchParams::default());
        assert!(cfs.len() <= k.max(1), "case {case}");
        let total: u64 = cfs.iter().map(Cf::n).sum();
        assert_eq!(total, ds.len() as u64, "case {case}");
        for cf in &cfs {
            assert!(cf.n() >= 1, "case {case}");
            assert!(cf.diameter() >= 0.0, "case {case}");
        }
    }
}

/// The bubble distance (Def. 6) is symmetric, non-negative, and zero
/// exactly for the same object.
#[test]
fn bubble_distance_axioms() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(200 + case);
        let a = DataBubble::new(
            vec![rng.gen_f64(-100.0, 100.0), rng.gen_f64(-100.0, 100.0)],
            rng.gen_range(1..1000) as u64,
            rng.gen_f64(0.0, 50.0),
        );
        let b = DataBubble::new(
            vec![rng.gen_f64(-100.0, 100.0), rng.gen_f64(-100.0, 100.0)],
            rng.gen_range(1..1000) as u64,
            rng.gen_f64(0.0, 50.0),
        );
        let dab = bubble_distance(&a, &b, false);
        let dba = bubble_distance(&b, &a, false);
        assert!((dab - dba).abs() < 1e-9, "case {case}: symmetry violated: {dab} vs {dba}");
        assert!(dab >= 0.0, "case {case}");
        assert_eq!(bubble_distance(&a, &a, true), 0.0, "case {case}");
    }
}

/// OPTICS on bubbles visits every bubble exactly once and carries the
/// total weight through.
#[test]
fn bubble_optics_is_a_weighted_permutation() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(300 + case);
        let ds = random_dataset(&mut rng, 100, 2);
        let k = rng.gen_range(2..15).min(ds.len());
        let min_pts = rng.gen_range(1..20);
        let c = db_sampling::compress_by_sampling(&ds, k, 3).unwrap();
        let bubbles: Vec<DataBubble> = c.stats.iter().map(DataBubble::from_cf).collect();
        let space = BubbleSpace::new(bubbles);
        let o = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts });
        assert_eq!(o.len(), k, "case {case}");
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..k).collect::<Vec<_>>(), "case {case}");
        assert_eq!(o.total_weight(), ds.len() as u64, "case {case}");
    }
}

/// Definition 7 invariant: a bubble's core distance is finite whenever the
/// whole space holds at least MinPts original objects (ε = ∞).
#[test]
fn core_distance_defined_iff_enough_weight() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(400 + case);
        let ds = random_dataset(&mut rng, 60, 2);
        let k = rng.gen_range(2..10).min(ds.len());
        let c = db_sampling::compress_by_sampling(&ds, k, 9).unwrap();
        let bubbles: Vec<DataBubble> = c.stats.iter().map(DataBubble::from_cf).collect();
        let space = BubbleSpace::new(bubbles);
        let mut nb = Vec::new();
        for i in 0..k {
            space.neighborhood(i, f64::INFINITY, &mut nb);
            // Total weight == dataset size >= 10 > MinPts=5.
            assert!(space.core_distance(i, 5, &nb).is_some(), "case {case}");
            // And undefined when MinPts exceeds the dataset size.
            assert!(space.core_distance(i, ds.len() + 1, &nb).is_none(), "case {case}");
        }
    }
}

/// All six pipeline configurations succeed on arbitrary inputs and report
/// consistent representative counts.
#[test]
fn every_pipeline_variant_runs() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(500 + case);
        let ds = random_dataset(&mut rng, 80, 2);
        let seed = rng.gen_range(0..100) as u64;
        let k = 8.min(ds.len());
        for compressor in [Compressor::Sample { seed }, Compressor::Birch(BirchParams::default())] {
            for recovery in [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles] {
                let out = run_pipeline(
                    &ds,
                    &PipelineConfig::new(
                        k,
                        compressor.clone(),
                        recovery,
                        OpticsParams { eps: f64::INFINITY, min_pts: 3 },
                    ),
                )
                .unwrap();
                assert!(out.n_representatives >= 1, "case {case}");
                assert!(out.n_representatives <= k, "case {case}");
                assert_eq!(out.rep_ordering.len(), out.n_representatives, "case {case}");
                assert_eq!(out.expanded.is_some(), recovery != Recovery::Naive, "case {case}");
                if let Some(x) = &out.expanded {
                    assert_eq!(x.len(), ds.len(), "case {case}");
                }
            }
        }
    }
}

/// Weighted expansion preserves the first-member reachability of every
/// representative (the jump structure of the rep ordering survives).
#[test]
fn weighted_expansion_preserves_jumps() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(600 + case);
        let ds = random_dataset(&mut rng, 100, 2);
        let seed = rng.gen_range(0..100) as u64;
        let k = 10.min(ds.len());
        let out =
            optics_sa_weighted(&ds, k, seed, &OpticsParams { eps: f64::INFINITY, min_pts: 2 })
                .unwrap();
        let expanded = out.expanded.unwrap();
        // Each rep's first member carries exactly the rep's reachability.
        let mut pos = 0usize;
        let mut members = vec![0usize; k];
        for &a in &db_sampling::compress_by_sampling(&ds, k, seed).unwrap().assignment {
            members[a as usize] += 1;
        }
        for e in &out.rep_ordering.entries {
            let first = &expanded.entries[pos];
            assert!(
                first.reachability == e.reachability
                    || (first.reachability.is_infinite() && e.reachability.is_infinite()),
                "case {case}"
            );
            pos += members[e.id];
        }
        assert_eq!(pos, ds.len(), "case {case}");
    }
}
