//! Kernel-equivalence harness (ISSUE 9).
//!
//! The batched distance kernels in `db_spatial::kernels` are the canonical
//! distance arithmetic of the whole workspace — indexes, classification,
//! the bubble-distance matrix and the oracle all share them. This harness
//! is what licenses that sharing:
//!
//! (a) every kernel equals `sq_dist_reference` — a plain indexed-loop
//!     emulation of the documented fixed lane-reduction order — **bit for
//!     bit**, over seeded random dimensionalities, lengths and offsets;
//! (b) the kernel stays within a documented ulp budget of the naive
//!     left-to-right `Metric::dist` sum (and is bit-identical to it for
//!     d ≤ 3, where the canonical order degenerates to it);
//! (c) block-split invariance: any chunking of the same query set — block
//!     sizes, tile borders, thread-like splits — yields identical bits.
//!
//! Iteration counts scale with the `KERNEL_ITERS` environment variable
//! (default 64; CI runs a high count), so local runs stay fast while CI
//! hammers the seed space.

use db_sampling::{nn_classify, nn_classify_parallel, NN_KERNEL_MAX_REPS};
use db_spatial::kernels::{
    dist_tile, dists_to_block, dists_to_indexed, nn_block, sq_dist, sq_dist_reference,
};
use db_spatial::{auto_index, Dataset, Metric, SpatialIndex, SquaredEuclidean};

fn iters() -> u64 {
    std::env::var("KERNEL_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

fn rand_block(rng: &mut db_rng::Rng, rows: usize, dim: usize) -> Vec<f64> {
    (0..rows * dim).map(|_| rng.gen_f64(-100.0, 100.0)).collect()
}

/// The historic scalar loop: strict left-to-right accumulation. The
/// kernels replaced this order; (b) bounds how far they may drift.
fn naive_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

// ---------------------------------------------------------------------------
// (a) kernel == reference emulation, bit-exactly
// ---------------------------------------------------------------------------

#[test]
fn kernels_match_reference_order_bit_exactly() {
    let mut rng = db_rng::Rng::seed_from_u64(0x9e37_79b9);
    for it in 0..iters() {
        let dim = rng.gen_range_inclusive(1..=24);
        let rows = rng.gen_range_inclusive(1..=300);
        let block = rand_block(&mut rng, rows, dim);
        // Query taken at a random row offset *inside* a larger buffer, so
        // alignment/offset of the operand slices varies across iterations.
        let qbuf = rand_block(&mut rng, 4, dim);
        let qoff = rng.gen_range(0..4) * dim;
        let q = &qbuf[qoff..qoff + dim];

        let mut out = vec![0.0f64; rows];
        dists_to_block(q, &block, dim, &mut out);
        for (i, row) in block.chunks_exact(dim).enumerate() {
            let reference = sq_dist_reference(q, row);
            assert_eq!(
                out[i].to_bits(),
                reference.to_bits(),
                "dists_to_block diverges from the documented order (it={it} dim={dim} row={i})"
            );
            assert_eq!(
                sq_dist(q, row).to_bits(),
                reference.to_bits(),
                "sq_dist diverges from the documented order (it={it} dim={dim} row={i})"
            );
            assert_eq!(
                SquaredEuclidean.dist(q, row).to_bits(),
                reference.to_bits(),
                "Metric::dist no longer delegates to the kernel (it={it} dim={dim})"
            );
        }

        // Gathered kernel on a random (with repeats) id list.
        let n_ids = rng.gen_range_inclusive(1..=rows);
        let ids: Vec<u32> = (0..n_ids).map(|_| rng.gen_range(0..rows) as u32).collect();
        let mut gathered = vec![0.0f64; n_ids];
        dists_to_indexed(q, &block, dim, &ids, &mut gathered);
        for (g, &id) in gathered.iter().zip(&ids) {
            assert_eq!(
                g.to_bits(),
                out[id as usize].to_bits(),
                "dists_to_indexed diverges (it={it} dim={dim} id={id})"
            );
        }
    }
}

#[test]
fn tile_kernel_matches_reference_order_bit_exactly() {
    let mut rng = db_rng::Rng::seed_from_u64(0x2545_f491);
    for it in 0..iters().min(32) {
        let dim = rng.gen_range_inclusive(1..=16);
        let na = rng.gen_range_inclusive(1..=20);
        let nb = rng.gen_range_inclusive(1..=60);
        let a = rand_block(&mut rng, na, dim);
        let b = rand_block(&mut rng, nb, dim);
        let mut tile = vec![0.0f64; na * nb];
        dist_tile(&a, &b, dim, &mut tile);
        for (i, qa) in a.chunks_exact(dim).enumerate() {
            for (j, pb) in b.chunks_exact(dim).enumerate() {
                assert_eq!(
                    tile[i * nb + j].to_bits(),
                    sq_dist_reference(qa, pb).to_bits(),
                    "dist_tile diverges (it={it} dim={dim} cell=({i},{j}))"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// (b) kernel vs naive left-to-right Metric::dist, documented ulp budget
// ---------------------------------------------------------------------------

#[test]
fn kernel_is_bit_identical_to_naive_sum_below_dim_4() {
    // For d <= 3 the high accumulator lanes only ever add +0.0 to a
    // non-negative partial sum, which is a bitwise identity — the
    // canonical order *is* the historic order there.
    let mut rng = db_rng::Rng::seed_from_u64(7);
    for _ in 0..iters() {
        for dim in 1..=3usize {
            let a = rand_block(&mut rng, 1, dim);
            let b = rand_block(&mut rng, 1, dim);
            assert_eq!(sq_dist(&a, &b).to_bits(), naive_sq(&a, &b).to_bits(), "dim = {dim}");
        }
    }
}

#[test]
fn kernel_stays_within_ulp_budget_of_naive_sum() {
    // Documented budget (DESIGN.md §13): both orders are floating-point
    // sums of the same d non-negative terms, so each is within
    // (d−1)·ε·Σterms of the true sum; their difference is bounded by
    // 2(d−1)·ε relative to the result. In practice the divergence is ≤ 1
    // ulp for the dimensionalities of the paper's workloads.
    let mut rng = db_rng::Rng::seed_from_u64(11);
    let mut max_rel = 0.0f64;
    for _ in 0..iters() {
        let dim = rng.gen_range_inclusive(4..=32);
        let a = rand_block(&mut rng, 1, dim);
        let b = rand_block(&mut rng, 1, dim);
        let kernel = sq_dist(&a, &b);
        let naive = naive_sq(&a, &b);
        let budget = 2.0 * (dim as f64 - 1.0) * f64::EPSILON;
        if naive != 0.0 {
            let rel = ((kernel - naive) / naive).abs();
            assert!(rel <= budget, "dim={dim}: rel error {rel:e} exceeds budget {budget:e}");
            max_rel = max_rel.max(rel);
        } else {
            assert_eq!(kernel, 0.0, "zero distance must be exact in every order");
        }
    }
    // The budget must not be vacuous: it is tight within two orders of
    // magnitude of what random inputs actually produce.
    assert!(max_rel <= 32.0 * 2.0 * f64::EPSILON, "observed divergence implausibly large");
}

// ---------------------------------------------------------------------------
// (c) block-split invariance: any chunking yields identical bits
// ---------------------------------------------------------------------------

/// Splits `0..n` at random points into consecutive chunks.
fn random_splits(rng: &mut db_rng::Rng, n: usize) -> Vec<(usize, usize)> {
    let mut cuts = vec![0, n];
    for _ in 0..rng.gen_range_inclusive(0..=4) {
        cuts.push(rng.gen_range(0..n + 1));
    }
    cuts.sort_unstable();
    cuts.windows(2).map(|w| (w[0], w[1])).filter(|(lo, hi)| lo < hi).collect()
}

#[test]
fn dists_to_block_is_split_invariant() {
    let mut rng = db_rng::Rng::seed_from_u64(23);
    for it in 0..iters() {
        let dim = rng.gen_range_inclusive(1..=12);
        let rows = rng.gen_range_inclusive(2..=400);
        let block = rand_block(&mut rng, rows, dim);
        let q = rand_block(&mut rng, 1, dim);

        let mut whole = vec![0.0f64; rows];
        dists_to_block(&q, &block, dim, &mut whole);

        let mut pieced = vec![0.0f64; rows];
        for (lo, hi) in random_splits(&mut rng, rows) {
            dists_to_block(&q, &block[lo * dim..hi * dim], dim, &mut pieced[lo..hi]);
        }
        let (w, p): (Vec<u64>, Vec<u64>) = (
            whole.iter().map(|d| d.to_bits()).collect(),
            pieced.iter().map(|d| d.to_bits()).collect(),
        );
        assert_eq!(w, p, "chunking the target block changed bits (it={it} dim={dim})");
    }
}

#[test]
fn nn_block_is_query_split_and_rep_tile_invariant() {
    let mut rng = db_rng::Rng::seed_from_u64(31);
    for it in 0..iters() {
        let dim = rng.gen_range_inclusive(1..=8);
        let nq = rng.gen_range_inclusive(2..=200);
        // Spans several rep tiles so tile borders are exercised.
        let nr = rng.gen_range_inclusive(1..=160);
        let queries = rand_block(&mut rng, nq, dim);
        let reps = rand_block(&mut rng, nr, dim);

        let mut whole_ids = vec![0u32; nq];
        let mut whole_d2 = vec![0.0f64; nq];
        nn_block(&queries, &reps, dim, &mut whole_ids, &mut whole_d2);

        // Any chunking of the query set (the parallel classify path hands
        // each worker an arbitrary contiguous slice) must reproduce the
        // whole-set bits exactly.
        let mut pieced_ids = vec![0u32; nq];
        let mut pieced_d2 = vec![0.0f64; nq];
        for (lo, hi) in random_splits(&mut rng, nq) {
            nn_block(
                &queries[lo * dim..hi * dim],
                &reps,
                dim,
                &mut pieced_ids[lo..hi],
                &mut pieced_d2[lo..hi],
            );
        }
        assert_eq!(whole_ids, pieced_ids, "query chunking changed winners (it={it})");
        let (w, p): (Vec<u64>, Vec<u64>) = (
            whole_d2.iter().map(|d| d.to_bits()).collect(),
            pieced_d2.iter().map(|d| d.to_bits()).collect(),
        );
        assert_eq!(w, p, "query chunking changed distances (it={it})");

        // And the winner per query is the plain ascending-id argmin of the
        // one-to-many kernel — the tiling is unobservable.
        for (qi, q) in queries.chunks_exact(dim).enumerate() {
            let mut all = vec![0.0f64; nr];
            dists_to_block(q, &reps, dim, &mut all);
            let (mut bi, mut bd) = (0u32, f64::INFINITY);
            for (j, &d) in all.iter().enumerate() {
                if d < bd {
                    bd = d;
                    bi = j as u32;
                }
            }
            assert_eq!(whole_ids[qi], bi, "tiling changed the argmin (it={it} qi={qi})");
            assert_eq!(whole_d2[qi].to_bits(), bd.to_bits(), "it={it} qi={qi}");
        }
    }
}

// ---------------------------------------------------------------------------
// Consumer equivalences: the two classify backends and the thread split
// ---------------------------------------------------------------------------

fn blob_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = db_rng::Rng::seed_from_u64(seed);
    let mut ds = Dataset::new(dim).expect("dim");
    for _ in 0..n {
        let p: Vec<f64> = (0..dim).map(|_| rng.gen_f64(-50.0, 50.0)).collect();
        ds.push(&p).expect("finite");
    }
    ds
}

#[test]
fn classify_backends_agree_at_the_threshold_boundary() {
    // k <= NN_KERNEL_MAX_REPS routes through the batched kernel, k just
    // above through the spatial index; both must agree with a direct
    // per-point index query bit for bit (same squared distances, same
    // (dist, id) tie-break), so the routing threshold is unobservable.
    for dim in [2usize, 3, 8] {
        let ds = blob_dataset(1_500, dim, 0xB0B + dim as u64);
        for k in [NN_KERNEL_MAX_REPS, NN_KERNEL_MAX_REPS + 1] {
            let reps = ds.subset(&(0..k).map(|i| i * 4).collect::<Vec<_>>());
            let got = nn_classify(&ds, &reps);
            let index = auto_index(&reps, None);
            let want: Vec<u32> = ds
                .iter()
                .map(|p| index.nearest(&reps, p).expect("reps non-empty").id as u32)
                .collect();
            assert_eq!(got, want, "dim={dim} k={k}");
        }
    }
}

#[test]
fn parallel_classify_is_split_invariant_on_the_kernel_path() {
    // Thread chunking hands nn_block arbitrary query slices; the
    // assignment must not depend on the chunk layout.
    let ds = blob_dataset(5_000, 3, 99);
    let reps = ds.subset(&(0..120).map(|i| i * 41).collect::<Vec<_>>());
    let seq = nn_classify(&ds, &reps);
    for threads in [1usize, 2, 3, 7] {
        let par = nn_classify_parallel(&ds, &reps, std::num::NonZeroUsize::new(threads));
        assert_eq!(par, seq, "threads = {threads}");
    }
}

// ---------------------------------------------------------------------------
// Zero-sqrt audit: the kernel classify path never leaves squared space
// ---------------------------------------------------------------------------

#[cfg(feature = "metrics")]
#[test]
fn kernel_classify_path_performs_zero_sqrt() {
    // ε-query convention audit: every scan compares in squared space and
    // converts only *reported* results via `surrogate_to_dist`, which is
    // where `spatial.sqrt_evals` is tallied. 1-NN classification reports
    // no distances at all — the kernel path must therefore take zero
    // square roots per candidate (and zero in total).
    let ds = blob_dataset(2_000, 4, 0x5EED);
    let reps = ds.subset(&(0..100).map(|i| i * 17).collect::<Vec<_>>());

    db_obs::reset();
    let kernel_assign = nn_classify(&ds, &reps);
    let snap = db_obs::snapshot();
    assert_eq!(
        snap.counter("spatial.sqrt_evals").unwrap_or(0),
        0,
        "kernel classify path took square roots"
    );
    assert_eq!(snap.counter("spatial.dist_evals"), Some((ds.len() * reps.len()) as u64));

    // The index route (k above the threshold) converts one reported
    // nearest distance per point — nonzero by design, which is exactly
    // what the kernel path avoids. This keeps the counter honest: a
    // broken tally would make the zero above vacuous.
    let big_reps = ds.subset(&(0..NN_KERNEL_MAX_REPS + 1).map(|i| i * 7).collect::<Vec<_>>());
    db_obs::reset();
    let index_assign = nn_classify(&ds, &big_reps);
    let snap = db_obs::snapshot();
    assert!(
        snap.counter("spatial.sqrt_evals").unwrap_or(0) >= ds.len() as u64,
        "index path should report >= one sqrt per classified point"
    );
    assert_eq!(kernel_assign.len(), index_assign.len());
}
