//! Integration test of the §10 metric-data extension: on Euclidean data,
//! the metric machinery (distance closure only) must reach the same
//! clustering quality as the native Euclidean bubble pipeline.

use data_bubbles::pipeline::optics_sa_bubbles;
use data_bubbles::{compress_metric, MetricBubbleSpace};
use db_datagen::{ds2, Ds2Params};
use db_eval::adjusted_rand_index;
use db_optics::{extract_dbscan, optics, OpticsParams};

#[test]
fn metric_bubbles_match_euclidean_bubbles_on_vector_data() {
    let data = ds2(&Ds2Params { n: 4_000, sigma: 2.0 }, 21);
    let n = data.len();
    let dist = |a: usize, b: usize| db_spatial::euclidean(data.data.point(a), data.data.point(b));

    // Metric pipeline: closure-only compression + OPTICS + label transfer.
    let compression = compress_metric(n, 60, 10, 5, dist);
    let space = MetricBubbleSpace::new(compression.bubbles.clone(), dist);
    let ordering = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts: 10 });
    let bubble_labels = extract_dbscan(&ordering, 4.0, 60);
    let metric_labels: Vec<i32> =
        compression.assignment.iter().map(|&b| bubble_labels[b as usize]).collect();
    let metric_ari = adjusted_rand_index(&data.labels, &metric_labels);

    // Native Euclidean pipeline at the same compression.
    let out =
        optics_sa_bubbles(&data.data, 60, 5, &OpticsParams { eps: f64::INFINITY, min_pts: 10 })
            .unwrap();
    let euclid_labels = out.expanded.as_ref().unwrap().extract_dbscan(4.0);
    let euclid_ari = adjusted_rand_index(&data.labels, &euclid_labels);

    assert!(euclid_ari > 0.95, "euclidean baseline degraded: {euclid_ari}");
    assert!(
        metric_ari > 0.9,
        "metric extension ARI {metric_ari} too far below euclidean {euclid_ari}"
    );
}

#[test]
fn metric_compression_weights_partition_the_data() {
    let data = ds2(&Ds2Params { n: 2_000, sigma: 2.0 }, 22);
    let dist = |a: usize, b: usize| db_spatial::euclidean(data.data.point(a), data.data.point(b));
    let c = compress_metric(data.len(), 40, 5, 9, dist);
    let total: u64 = c.bubbles.iter().map(|b| b.n).sum();
    assert_eq!(total, data.len() as u64);
    // Every bubble's nndist table is monotone and bounded by its extent
    // (up to estimation noise).
    for b in &c.bubbles {
        for w in b.nndist_table.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
