//! Pipeline-level observability tests: after a real pipeline run the
//! registry must hold the algorithm counters, and the per-phase spans must
//! agree with the wall-clock `PipelineTimings`.
//!
//! The registry is process-global, so these tests serialize on a lock and
//! reset before each run. They are only meaningful with the `metrics`
//! feature (the default); without it the whole file compiles to nothing.
#![cfg(feature = "metrics")]

use std::sync::Mutex;

use data_bubbles::pipeline::{optics_sa_bubbles, PipelineTimings};
use db_optics::OpticsParams;
use db_spatial::Dataset;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Two dense squares far apart, 800 points each.
fn two_squares() -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..800 {
        let (x, y) = ((i % 40) as f64 * 0.25, (i / 40) as f64 * 0.25);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 200.0, y]).unwrap();
    }
    ds
}

fn params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 20 }
}

#[test]
fn sa_bubbles_records_algorithm_counters() {
    let _g = locked();
    db_obs::reset();
    let ds = two_squares();
    optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
    let snap = db_obs::snapshot();

    // The OPTICS walk over the bubble space evaluates k distances per
    // neighbourhood query, so at least k*k in total.
    let distance_calls = snap.counter("optics.distance_calls").unwrap_or(0);
    assert!(distance_calls >= 40 * 40, "optics.distance_calls = {distance_calls}");
    // One neighbourhood query per bubble processed.
    assert!(snap.counter("optics.neighborhood_queries").unwrap_or(0) >= 40);
    // Sampling classified every original object.
    assert_eq!(snap.counter("sampling.points_classified"), Some(ds.len() as u64));
    assert_eq!(snap.counter("sampling.reps_sampled"), Some(40));
    // Exactly one pipeline run.
    assert_eq!(snap.counter("pipeline.runs"), Some(1));
}

#[test]
fn phase_spans_match_pipeline_timings() {
    let _g = locked();
    db_obs::reset();
    let ds = two_squares();
    let out = optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
    let snap = db_obs::snapshot();

    // Each phase span fired exactly once and its total agrees with the
    // wall-clock timing within 5% (plus a small absolute slack for very
    // short phases, where the two Instant reads straddle the span's).
    let timings: &PipelineTimings = &out.timings;
    for (name, measured) in [
        ("pipeline.compression", timings.compression),
        ("pipeline.clustering", timings.clustering),
        ("pipeline.recovery", timings.recovery),
    ] {
        let span = snap.span(name).unwrap_or_else(|| panic!("span {name} missing"));
        assert_eq!(span.count, 1, "{name} fired {} times", span.count);
        let measured_ns = measured.as_nanos() as f64;
        let span_ns = span.total_ns as f64;
        let tolerance = measured_ns * 0.05 + 200_000.0;
        assert!(
            (span_ns - measured_ns).abs() <= tolerance,
            "{name}: span {span_ns} ns vs timing {measured_ns} ns (tolerance {tolerance} ns)"
        );
    }

    // The enclosing pipeline.run span covers all three phases.
    let run = snap.span("pipeline.run").unwrap();
    let phases_ns: u64 = ["pipeline.compression", "pipeline.clustering", "pipeline.recovery"]
        .iter()
        .map(|n| snap.span(n).unwrap().total_ns)
        .sum();
    assert!(run.total_ns >= phases_ns, "run {} < phases {}", run.total_ns, phases_ns);
    // Phase spans are children of pipeline.run: its self-time excludes them.
    assert!(run.self_ns <= run.total_ns - phases_ns + 200_000);
}

#[test]
fn linked_worker_spans_attribute_into_parent() {
    let _g = locked();
    db_obs::reset();
    // Big enough to cross nn_classify_parallel's sequential cutoff (1024)
    // so the classification actually fans out to worker threads.
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..4096 {
        ds.push(&[(i % 64) as f64, (i / 64) as f64]).unwrap();
    }
    let mut reps = Dataset::new(2).unwrap();
    for i in 0..8 {
        reps.push(&[(i * 8) as f64, (i * 8) as f64]).unwrap();
    }
    let threads = std::num::NonZeroUsize::new(4);
    db_sampling::nn_classify_parallel(&ds, &reps, threads);
    let snap = db_obs::snapshot();

    let parent = snap.span("sampling.nn_classify").expect("parent span");
    assert_eq!(parent.count, 1);
    let chunks = snap.span("sampling.classify_chunk").expect("worker spans");
    assert_eq!(chunks.count, 4, "one linked span per worker");
    assert!(chunks.total_ns > 0);

    // Cross-thread attribution: the workers' time reports into the parent
    // as child time, so the parent's self-time excludes it (clamped at
    // zero — concurrent workers can sum past the parent's wall time).
    assert!(
        parent.self_ns <= parent.total_ns.saturating_sub(chunks.total_ns),
        "parent self {} ns must exclude the {} ns of linked worker time (total {} ns)",
        parent.self_ns,
        chunks.total_ns,
        parent.total_ns
    );
}

#[test]
fn exporters_render_pipeline_metrics() {
    let _g = locked();
    db_obs::reset();
    let ds = two_squares();
    optics_sa_bubbles(&ds, 30, 1, &params()).unwrap();
    let snap = db_obs::snapshot();
    let table = db_obs::render_table(&snap);
    assert!(table.contains("optics.distance_calls"));
    assert!(table.contains("pipeline.clustering"));
    let jsonl = db_obs::json_lines(&snap);
    assert!(jsonl.lines().any(|l| l.contains(r#""kind":"span""#)));
    assert!(jsonl.lines().any(|l| l.contains(r#""name":"pipeline.runs""#)));
}
