//! Differential harness: the optimized production paths against the naive,
//! obviously-correct oracles of `db-oracle`.
//!
//! Comparison policy (DESIGN.md §10):
//!
//! * **Exact paths** — spatial indexes, the OPTICS walk, DBSCAN, the
//!   single-link merge heights — are compared with `==`: same squared-space
//!   ε predicate, same `(dist, id)` ordering, so any deviation is a bug.
//! * **Stable-statistics paths** — CF-derived bubble statistics against
//!   the pairwise closed forms of Def. 10 — are compared with the relative
//!   tolerances of `db_eval::rel_err`.
//! * **Compression quality** — bubble pipelines against exact OPTICS on the
//!   raw points — is compared with ARI at a shared cut level (the paper's
//!   own quality measure, §9).
//!
//! `ORACLE_ITERS` scales the seeded loops (default 100); see `ci.yml`.

use db_datagen::adversarial;
use db_datagen::{differential_corpora, ds1, ds2, Ds1Params, Ds2Params, Rng};
use db_eval::adjusted_rand_index;
use db_hierarchical::{agglomerative_from_fn, slink_from_fn, Dendrogram, Linkage};
use db_optics::{optics_points, suggest_cut, suggest_eps, OpticsParams};
use db_oracle::{
    exact_bubble, exact_dbscan, exact_knn, exact_optics, exact_range, exact_single_link_points,
};
use db_spatial::{
    auto_index, euclidean, BallTree, Dataset, GridIndex, KdTree, LinearScan, Neighbor,
    SpatialIndex, VpTree,
};

use data_bubbles::pipeline::{run_pipeline, Compressor, PipelineConfig, Recovery};
use data_bubbles::DataBubble;
use db_birch::{BirchParams, Cf};

fn oracle_iters() -> usize {
    std::env::var("ORACLE_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(100)
}

/// Every corpus the index-level differentials run on: the seeded datagen
/// families plus the well-formed adversarial sets (ties, huge offsets,
/// singleton floods).
fn index_corpora() -> Vec<(String, Dataset)> {
    let mut out: Vec<(String, Dataset)> = differential_corpora(42)
        .into_iter()
        .map(|c| (c.name.to_string(), c.labeled.data))
        .collect();
    out.push(("far_offset".into(), adversarial::far_offset_clusters(7).build().unwrap()));
    out.push(("duplicates".into(), adversarial::zero_variance_duplicates(8).build().unwrap()));
    out.push(("singletons".into(), adversarial::singleton_flood(9).build().unwrap()));
    out
}

/// Query points for a dataset: a spread of dataset points (exact hits,
/// including duplicates) plus off-data midpoints.
fn query_points(ds: &Dataset) -> Vec<Vec<f64>> {
    let mut qs = Vec::new();
    let step = (ds.len() / 6).max(1);
    for i in (0..ds.len()).step_by(step).take(6) {
        qs.push(ds.point(i).to_vec());
    }
    // Midpoint of the first and last point: generic off-data position.
    let (a, b) = (ds.point(0), ds.point(ds.len() - 1));
    qs.push(a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect());
    // Far outside the data.
    qs.push(a.iter().map(|x| x + 1e4).collect());
    qs
}

/// ε values for a query: degenerate, data-derived (including the *exact*
/// k-NN boundary distance, where the squared-space predicate matters), and
/// unbounded.
fn eps_values(ds: &Dataset, q: &[f64]) -> Vec<f64> {
    let mut eps = vec![0.0, 1e-12, f64::INFINITY];
    let nn = exact_knn(ds, q, 5);
    if let Some(last) = nn.last() {
        eps.push(last.dist); // exact boundary
        eps.push(last.dist * 1.5);
    }
    eps
}

#[test]
fn indexes_match_brute_force_exactly() {
    for (name, ds) in index_corpora() {
        let linear = LinearScan::build(&ds);
        let kd = KdTree::build(&ds);
        let ball = BallTree::build(&ds);
        let auto = auto_index(&ds, Some(1.0));
        let mut out = Vec::new();
        for q in query_points(&ds) {
            for eps in eps_values(&ds, &q) {
                let expect = exact_range(&ds, &q, eps);
                for (iname, index) in [
                    ("linear", &linear as &dyn SpatialIndex),
                    ("kdtree", &kd),
                    ("balltree", &ball),
                    ("auto", &auto),
                ] {
                    index.range(&ds, &q, eps, &mut out);
                    assert_eq!(out, expect, "{name}/{iname} range eps={eps}");
                }
                if eps.is_finite() && eps > 0.0 {
                    if let Some(grid) = GridIndex::build(&ds, eps) {
                        grid.range(&ds, &q, eps, &mut out);
                        assert_eq!(out, expect, "{name}/grid range eps={eps}");
                    }
                }
            }
            for k in [1usize, 4, 17, ds.len(), ds.len() + 5] {
                let expect = exact_knn(&ds, &q, k);
                for (iname, index) in [
                    ("linear", &linear as &dyn SpatialIndex),
                    ("kdtree", &kd),
                    ("balltree", &ball),
                    ("auto", &auto),
                ] {
                    index.knn(&ds, &q, k, &mut out);
                    assert_eq!(out, expect, "{name}/{iname} knn k={k}");
                }
            }
        }
    }
}

#[test]
fn vptree_matches_sqrt_space_brute_force() {
    // ORACLE: the VP-tree is a *metric* index — there is no squared space
    // for an arbitrary metric, so its ε predicate is `d ≤ eps` on the
    // distances the closure returns. That differs from the coordinate
    // indexes' squared-space predicate by at most one ulp at an exact
    // boundary, so the VP-tree gets its own sqrt-space brute force here
    // rather than `exact_range`. See DESIGN.md §10.
    for (name, ds) in index_corpora() {
        let metric = |a: usize, b: usize| euclidean(ds.point(a), ds.point(b));
        let tree = VpTree::build(ds.len(), &metric);
        let mut out = Vec::new();
        for q in query_points(&ds) {
            let dq = |id: usize| euclidean(ds.point(id), &q);
            for eps in eps_values(&ds, &q) {
                let mut expect: Vec<(usize, f64)> = (0..ds.len())
                    .filter_map(|id| {
                        let d = dq(id);
                        (d <= eps).then_some((id, d))
                    })
                    .collect();
                expect.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                tree.range(&dq, eps, &mut out);
                let got: Vec<(usize, f64)> = out.iter().map(|n| (n.id, n.dist)).collect();
                assert_eq!(got, expect, "{name}/vptree range eps={eps}");
            }
            let expect_nn = (0..ds.len())
                .map(|id| (dq(id), id))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let got = tree.nearest(&dq).map(|n| (n.dist, n.id));
            assert_eq!(got, expect_nn, "{name}/vptree nearest");
        }
    }
}

#[test]
fn optics_walk_matches_exact_optics() {
    for (name, ds) in index_corpora() {
        for min_pts in [3usize, 8] {
            for eps in [f64::INFINITY, suggest_eps(&ds, min_pts)] {
                let params = OpticsParams { eps, min_pts };
                let fast = optics_points(&ds, &params);
                let naive = exact_optics(&ds, &params);
                assert_eq!(fast, naive, "{name} optics eps={eps} min_pts={min_pts}");
            }
        }
    }
}

#[test]
fn dbscan_matches_exact_dbscan() {
    for (name, ds) in index_corpora() {
        for min_pts in [4usize, 10] {
            let eps = suggest_eps(&ds, min_pts);
            let fast = db_optics::dbscan(&ds, eps, min_pts);
            let naive = exact_dbscan(&ds, eps, min_pts);
            assert_eq!(fast, naive, "{name} dbscan eps={eps} min_pts={min_pts}");
        }
    }
}

/// Merge heights of a dendrogram, sorted ascending.
fn sorted_heights(d: &Dendrogram) -> Vec<f64> {
    let mut h: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
    h.sort_by(f64::total_cmp);
    h
}

#[test]
fn single_link_matches_exact_dendrogram() {
    // Any single-link algorithm must produce the multiset of MST edge
    // weights as its merge heights, and identical flat partitions at any
    // cut strictly between two distinct heights (merge *order* may differ
    // under ties, the partitions may not).
    for corpus in differential_corpora(17) {
        let ds = &corpus.labeled.data;
        if ds.len() > 150 {
            continue; // the O(n³) oracle is for small inputs
        }
        let naive = exact_single_link_points(ds);
        let expect = sorted_heights(&naive);
        let dist = |a: usize, b: usize| euclidean(ds.point(a), ds.point(b));
        for (aname, dendro) in [
            ("slink", slink_from_fn(ds.len(), dist)),
            ("agglo", agglomerative_from_fn(ds.len(), Linkage::Single, dist)),
        ] {
            assert_eq!(
                sorted_heights(&dendro),
                expect,
                "{}/{aname}: merge heights differ",
                corpus.name
            );
            // Cuts at midpoints between distinct consecutive heights.
            for w in expect.windows(2) {
                if w[1] > w[0] {
                    let cut = 0.5 * (w[0] + w[1]);
                    let ari = adjusted_rand_index(
                        &dendro.cut_at_distance(cut),
                        &naive.cut_at_distance(cut),
                    );
                    assert!(
                        (ari - 1.0).abs() < 1e-12,
                        "{}/{aname}: partition differs at cut {cut} (ARI {ari})",
                        corpus.name
                    );
                }
            }
        }
    }
}

#[test]
fn bubble_statistics_match_pairwise_closed_forms() {
    // DataBubble derives rep/extent from CF sufficient statistics (one
    // pass); the oracle evaluates Def. 10 pairwise. Agreement is within the
    // stable-statistics tolerance, not bit-exact.
    let mut rng = Rng::new(99);
    let corpora = index_corpora();
    let iters = oracle_iters();
    for it in 0..iters {
        let (name, ds) = &corpora[it % corpora.len()];
        let size = 1 + rng.below(40.min(ds.len()));
        let ids: Vec<usize> = (0..size).map(|_| rng.below(ds.len())).collect();
        let expect = exact_bubble(ds, &ids);

        let from_points = DataBubble::from_points(ds, &ids);
        let mut cf = Cf::empty(ds.dim());
        for &i in &ids {
            cf.add_point(ds.point(i));
        }
        let from_cf = DataBubble::from_cf(&cf);

        for (path, b) in [("from_points", &from_points), ("from_cf", &from_cf)] {
            assert_eq!(b.n(), expect.n, "{name}/{path}: point count");
            assert!(
                db_eval::all_close(b.rep(), &expect.rep, 1e-9),
                "{name}/{path}: rep {:?} vs {:?}",
                b.rep(),
                expect.rep
            );
            assert!(
                db_eval::rel_err(b.extent(), expect.extent) < 1e-6,
                "{name}/{path}: extent {} vs pairwise {}",
                b.extent(),
                expect.extent
            );
            for k in [1u64, 2, expect.n] {
                assert!(
                    db_eval::rel_err(b.nndist(k), expect.nndist(k)) < 1e-6,
                    "{name}/{path}: nndist({k})"
                );
            }
        }
    }
}

/// The six paper pipelines on a corpus, as (context, config) pairs.
fn six_configs(k: usize, seed: u64, optics: OpticsParams) -> Vec<(String, PipelineConfig)> {
    let mut out = Vec::new();
    for (cname, compressor) in
        [("SA", Compressor::Sample { seed }), ("CF", Compressor::Birch(BirchParams::default()))]
    {
        for recovery in [Recovery::Naive, Recovery::Weighted, Recovery::Bubbles] {
            out.push((
                format!("OPTICS-{cname}-{recovery:?} k={k}"),
                PipelineConfig::new(k, compressor.clone(), recovery, optics),
            ));
        }
    }
    out
}

#[test]
fn bubble_pipelines_reach_paper_grade_agreement_with_exact_optics() {
    // The paper's central quality claim (§9): with enough representatives,
    // Data-Bubble clusterings are nearly indistinguishable from OPTICS on
    // the full database. Acceptance: ARI ≥ 0.95 against *exact* OPTICS at
    // k ≥ 10% compression on DS1-style corpora.
    let min_pts = 10;
    let optics = OpticsParams { eps: f64::INFINITY, min_pts };
    let corpora = [
        ("ds1", ds1(&Ds1Params { n: 800, noise_fraction: 0.02 }, 5).data),
        ("ds2", ds2(&Ds2Params { n: 600, sigma: 2.0 }, 6).data),
    ];
    for (name, ds) in corpora {
        let exact = exact_optics(&ds, &optics);
        // Compare at the *macro-structure* cut (2× the suggested level):
        // `suggest_cut` targets the finest resolvable density level, and a
        // few-hundred-point rendition of a generator designed for 10⁶
        // points does not stably resolve its micro-clusters — the exact run
        // fragments them into sampling artifacts that bubbles legitimately
        // smooth. The paper's §9 quality claim is about the cluster
        // structure proper, which both runs resolve identically here.
        let cut = 2.0 * suggest_cut(&ds, min_pts);
        let exact_labels = db_optics::extract_dbscan(&exact, cut, ds.len());
        for k in [ds.len() / 10, (ds.len() * 15) / 100] {
            for (ctx, cfg) in six_configs(k, 21, optics) {
                let out = run_pipeline(&ds, &cfg).expect("pipeline runs");
                assert!(out.n_representatives > 0, "{name}/{ctx}: no representatives");
                if cfg.recovery == Recovery::Naive {
                    // Naive recovery loses the non-representative objects
                    // (the paper's "lost objects" problem) — there is no
                    // per-object labeling to compare.
                    assert!(out.expanded.is_none(), "{name}/{ctx}: unexpected expansion");
                    continue;
                }
                let expanded = out.expanded.as_ref().expect("recovery expands");
                // Both expanding recoveries solve the "lost objects"
                // problem: the expansion is a permutation of the database.
                let mut seen = vec![false; ds.len()];
                for id in expanded.order() {
                    assert!(!seen[id as usize], "{name}/{ctx}: object {id} expanded twice");
                    seen[id as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "{name}/{ctx}: expansion lost objects");
                let labels = expanded.extract_dbscan(cut);
                let ari = adjusted_rand_index(&labels, &exact_labels);
                if cfg.recovery == Recovery::Bubbles {
                    assert!(
                        ari >= 0.95,
                        "{name}/{ctx}: ARI {ari:.4} vs exact OPTICS below paper grade"
                    );
                }
                // Weighted recovery is *expected* to score poorly at a fixed
                // cut: it solves size distortion and lost objects but not
                // structural distortion (the motivation for Def. 9), so its
                // ARI is informational only.
            }
        }
    }
}

#[test]
fn def9_sub_minpts_bubble_regression() {
    // Regression for the Def. 9 second-branch fix: in an ε-bounded run a
    // bubble holding fewer than MinPts points has an UNDEFINED in-walk
    // core-distance; `expand_bubbles` must recover the unbounded
    // core-distance so its non-first members still get a *defined* virtual
    // reachability. Before the fix they inherited ∞.
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..200 {
        let (x, y) = ((i % 20) as f64 * 0.5, (i / 20) as f64 * 0.5);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 40.0, y]).unwrap();
    }
    // A far 3-point group: its own grid region, below MinPts.
    let outliers = [400usize, 401, 402];
    ds.push(&[200.0, 200.0]).unwrap();
    ds.push(&[200.6, 200.0]).unwrap();
    ds.push(&[200.0, 200.6]).unwrap();

    let min_pts = 6;
    // ε big enough to keep each dense square connected, far too small to
    // reach the outlier group from anywhere (or the squares from it).
    let optics = OpticsParams { eps: 5.0, min_pts };
    let cfg = PipelineConfig::new(
        1, // k is ignored by GridSquash (must still pass validation)
        Compressor::GridSquash { bins_per_dim: 24 },
        Recovery::Bubbles,
        optics,
    );
    let out = run_pipeline(&ds, &cfg).expect("pipeline runs");
    let expanded = out.expanded.as_ref().expect("bubbles expand");

    // The outlier bubble entered the walk as a fresh start (UNDEFINED
    // reachability) with an UNDEFINED ε-bounded core-distance. Its members
    // beyond the first must still have finite virtual reachability.
    let outlier_entries: Vec<(u32, f64)> = expanded
        .order()
        .iter()
        .zip(expanded.reachabilities())
        .filter(|(id, _)| outliers.contains(&(**id as usize)))
        .map(|(&id, r)| (id, r))
        .collect();
    assert_eq!(outlier_entries.len(), 3, "all outliers present after expansion");
    let finite = outlier_entries.iter().filter(|(_, r)| r.is_finite()).count();
    assert!(
        finite >= 2,
        "sub-MinPts bubble members lost their virtual reachability: {outlier_entries:?}"
    );

    // Pin against oracle OPTICS on the raw points: at a cut below ε both
    // sides agree on the cluster structure (two dense squares; the outlier
    // trio is noise at MinPts = 6 either way).
    let exact = exact_optics(&ds, &optics);
    let cut = 1.0;
    let exact_labels = db_optics::extract_dbscan(&exact, cut, ds.len());
    let labels = expanded.extract_dbscan(cut);
    let ari = adjusted_rand_index(&labels, &exact_labels);
    assert!(ari >= 0.95, "expanded clustering diverged from exact OPTICS: ARI {ari:.4}");
    for &o in &outliers {
        assert_eq!(exact_labels[o], -1, "oracle should call outlier {o} noise");
    }
}

#[test]
fn seeded_random_queries_match_brute_force() {
    // A randomized sweep on top of the structured cases above: random
    // corpora, random queries, random ε — scaled by ORACLE_ITERS.
    let mut rng = Rng::new(4242);
    let iters = oracle_iters();
    for it in 0..iters {
        let n = 30 + rng.below(90);
        let dim = 1 + rng.below(4);
        let mut ds = Dataset::new(dim).unwrap();
        let mut p = vec![0.0; dim];
        for _ in 0..n {
            for x in p.iter_mut() {
                *x = rng.uniform_in(-50.0, 50.0);
            }
            ds.push(&p).unwrap();
        }
        let index = auto_index(&ds, Some(10.0));
        let kd = KdTree::build(&ds);
        let mut out: Vec<Neighbor> = Vec::new();
        for _ in 0..4 {
            for x in p.iter_mut() {
                *x = rng.uniform_in(-60.0, 60.0);
            }
            let eps = rng.uniform_in(0.0, 80.0);
            let expect = exact_range(&ds, &p, eps);
            index.range(&ds, &p, eps, &mut out);
            assert_eq!(out, expect, "iter {it}: auto range");
            kd.range(&ds, &p, eps, &mut out);
            assert_eq!(out, expect, "iter {it}: kd range");
            let k = 1 + rng.below(n);
            let expect = exact_knn(&ds, &p, k);
            index.knn(&ds, &p, k, &mut out);
            assert_eq!(out, expect, "iter {it}: auto knn");
        }
    }
}
