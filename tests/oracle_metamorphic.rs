//! Metamorphic harness: seeded randomized invariance properties (the
//! repo's in-tree substitute for a property-testing crate — the workspace
//! is dependency-free by design).
//!
//! Each property runs `ORACLE_ITERS` seeded iterations (default 100).
//! Invariances are asserted at the strength the arithmetic supports
//! (DESIGN.md §10):
//!
//! * **Bit-exact**: power-of-two scaling (every pipeline operation —
//!   `+ − × ÷ sqrt` — is exactly equivariant under `2^k` factors, and the
//!   `powf` exponent is dimensionless), coordinate swap in 2-d (two-term
//!   FP addition is commutative), duplicate injection with scaled MinPts
//!   (the k-th neighbor distance is the same value), and the
//!   thread/matrix execution knobs (a documented determinism contract).
//! * **Structural**: translation and row permutation perturb distances by
//!   ulps, so cluster *structure* (ARI = 1 on hard-margin corpora) is
//!   asserted instead of bit equality.

use db_datagen::{separated_blobs, Rng, SeparatedBlobsParams};
use db_eval::adjusted_rand_index;
use db_hierarchical::slink;
use db_optics::{extract_dbscan, optics_points, OpticsParams};
use db_spatial::Dataset;

use data_bubbles::pipeline::{run_pipeline, Compressor, PipelineConfig, Recovery};
use std::num::NonZeroUsize;

fn oracle_iters() -> usize {
    std::env::var("ORACLE_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(100)
}

const MIN_PTS: usize = 4;
/// Cut level for the blob corpora: above any intra-blob distance
/// (2·radius = 2), far below the inter-blob separation (8).
const CUT: f64 = 2.5;

fn blob_params(rng: &mut Rng) -> SeparatedBlobsParams {
    SeparatedBlobsParams {
        n: 60 + rng.below(60),
        n_clusters: 2 + rng.below(3),
        dim: 2,
        radius: 1.0,
        separation: 8.0,
    }
}

fn optics_params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: MIN_PTS }
}

fn labels_of(ds: &Dataset) -> Vec<i32> {
    let o = optics_points(ds, &optics_params());
    extract_dbscan(&o, CUT, ds.len())
}

fn transformed(ds: &Dataset, f: impl Fn(&[f64], &mut Vec<f64>)) -> Dataset {
    let mut out = Dataset::with_capacity(ds.dim(), ds.len()).unwrap();
    let mut buf = Vec::with_capacity(ds.dim());
    for i in 0..ds.len() {
        buf.clear();
        f(ds.point(i), &mut buf);
        out.push(&buf).unwrap();
    }
    out
}

#[test]
fn translation_preserves_cluster_structure() {
    let mut rng = Rng::new(101);
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), it as u64).data;
        let base = labels_of(&ds);
        let offset: Vec<f64> = (0..ds.dim()).map(|_| rng.uniform_in(-1e3, 1e3)).collect();
        let moved = transformed(&ds, |p, out| {
            out.extend(p.iter().zip(&offset).map(|(x, o)| x + o));
        });
        let ari = adjusted_rand_index(&labels_of(&moved), &base);
        assert!((ari - 1.0).abs() < 1e-12, "iter {it}: translation changed clusters (ARI {ari})");
    }
}

#[test]
fn power_of_two_scaling_is_bit_exact() {
    // Multiplying every coordinate by 2^k scales every distance,
    // core-distance and reachability by exactly 2^k: assert bit equality
    // of the scaled reachability plot, not just cluster agreement.
    let mut rng = Rng::new(202);
    let scales = [0.25, 0.5, 2.0, 4.0, 8.0];
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), 1000 + it as u64).data;
        let base = optics_points(&ds, &optics_params());
        let s = scales[rng.below(scales.len())];
        let scaled_ds = transformed(&ds, |p, out| out.extend(p.iter().map(|x| x * s)));
        let scaled = optics_points(&scaled_ds, &optics_params());
        assert_eq!(base.len(), scaled.len());
        for (a, b) in base.entries.iter().zip(&scaled.entries) {
            assert_eq!(a.id, b.id, "iter {it} s={s}: walk order changed");
            assert_eq!(
                (a.reachability * s).to_bits(),
                b.reachability.to_bits(),
                "iter {it} s={s}: reachability of id {} not exactly scaled",
                a.id
            );
            assert_eq!(
                (a.core_distance * s).to_bits(),
                b.core_distance.to_bits(),
                "iter {it} s={s}: core-distance of id {} not exactly scaled",
                a.id
            );
        }
    }
}

#[test]
fn row_permutation_preserves_structure_and_heights() {
    let mut rng = Rng::new(303);
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), 2000 + it as u64).data;
        let base = labels_of(&ds);
        let mut perm: Vec<usize> = (0..ds.len()).collect();
        rng.shuffle(&mut perm);
        let shuffled = ds.subset(&perm);
        // Map the permuted labels back onto original ids.
        let permuted = labels_of(&shuffled);
        let mut back = vec![0i32; ds.len()];
        for (new_id, &old_id) in perm.iter().enumerate() {
            back[old_id] = permuted[new_id];
        }
        let ari = adjusted_rand_index(&back, &base);
        assert!((ari - 1.0).abs() < 1e-12, "iter {it}: permutation changed clusters (ARI {ari})");
        // Single-link merge heights are a multiset of pairwise distances:
        // identical values regardless of row order.
        let mut h1: Vec<f64> = slink(&ds).merges().iter().map(|m| m.dist).collect();
        let mut h2: Vec<f64> = slink(&shuffled).merges().iter().map(|m| m.dist).collect();
        h1.sort_by(f64::total_cmp);
        h2.sort_by(f64::total_cmp);
        let same = h1.iter().zip(&h2).all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "iter {it}: single-link heights changed under permutation");
    }
}

#[test]
fn coordinate_swap_is_bit_exact_in_2d() {
    // (dx² + dy²) and (dy² + dx²) are the same FP value (two-term addition
    // is commutative), so swapping the two coordinates of every point must
    // reproduce the ordering bit for bit.
    let mut rng = Rng::new(404);
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), 3000 + it as u64).data;
        let swapped = transformed(&ds, |p, out| {
            out.push(p[1]);
            out.push(p[0]);
        });
        let a = optics_points(&ds, &optics_params());
        let b = optics_points(&swapped, &optics_params());
        assert_eq!(a, b, "iter {it}: coordinate swap changed the ordering");
    }
}

#[test]
fn duplicate_injection_with_scaled_min_pts_keeps_core_distances() {
    // Duplicating every point m times and multiplying MinPts by m leaves
    // every k-th-neighbor distance — hence every core-distance — exactly
    // unchanged: the distance multiset per point is the original one with
    // every value repeated m times.
    let mut rng = Rng::new(505);
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), 4000 + it as u64).data;
        let n = ds.len();
        let mut doubled = Dataset::with_capacity(ds.dim(), 2 * n).unwrap();
        for i in 0..n {
            doubled.push(ds.point(i)).unwrap();
        }
        for i in 0..n {
            doubled.push(ds.point(i)).unwrap();
        }
        let base = optics_points(&ds, &optics_params());
        let dup =
            optics_points(&doubled, &OpticsParams { eps: f64::INFINITY, min_pts: 2 * MIN_PTS });
        let base_pos = base.positions();
        let dup_pos = dup.positions();
        for id in 0..n {
            let c0 = base.entries[base_pos[id]].core_distance;
            let c1 = dup.entries[dup_pos[id]].core_distance;
            assert_eq!(
                c0.to_bits(),
                c1.to_bits(),
                "iter {it}: core-distance of id {id} changed under duplication"
            );
        }
        // Cluster structure: originals keep their clusters, each duplicate
        // lands in its original's cluster.
        let base_labels = extract_dbscan(&base, CUT, n);
        let dup_labels = extract_dbscan(&dup, CUT, 2 * n);
        let expected: Vec<i32> = base_labels.iter().chain(&base_labels).copied().collect();
        let ari = adjusted_rand_index(&dup_labels, &expected);
        assert!((ari - 1.0).abs() < 1e-12, "iter {it}: duplication changed clusters (ARI {ari})");
    }
}

#[test]
fn execution_knobs_never_change_pipeline_output() {
    // Random thread counts × matrix on/off: the documented bit-for-bit
    // determinism contract, exercised with randomized corpora and
    // configurations rather than the fixed grid of tests/determinism.rs.
    let mut rng = Rng::new(606);
    for it in 0..oracle_iters() {
        let ds = separated_blobs(&blob_params(&mut rng), 5000 + it as u64).data;
        let k = 8 + rng.below(12);
        let compressor = if rng.below(2) == 0 {
            Compressor::Sample { seed: it as u64 }
        } else {
            Compressor::GridSquash { bins_per_dim: 8 + rng.below(8) }
        };
        let mut cfg = PipelineConfig::new(k, compressor, Recovery::Bubbles, optics_params());
        cfg.threads = NonZeroUsize::new(1);
        let base = run_pipeline(&ds, &cfg).expect("pipeline runs");
        cfg.threads = NonZeroUsize::new(1 + rng.below(7));
        cfg.matrix_max_k = if rng.below(2) == 0 { 0 } else { usize::MAX };
        let other = run_pipeline(&ds, &cfg).expect("pipeline runs");
        assert_eq!(base.rep_ordering, other.rep_ordering, "iter {it}: rep ordering changed");
        assert_eq!(base.expanded, other.expanded, "iter {it}: expansion changed");
    }
}
