//! End-to-end integration tests of the six paper pipelines on seeded
//! synthetic workloads: the qualitative claims of the paper's evaluation,
//! asserted numerically.

use data_bubbles::pipeline::{
    optics_cf_bubbles, optics_cf_naive, optics_cf_weighted, optics_sa_bubbles, optics_sa_naive,
    optics_sa_weighted,
};
use db_birch::BirchParams;
use db_datagen::{ds1, ds2, Ds1Params, Ds2Params};
use db_eval::adjusted_rand_index;
use db_optics::{extract_dbscan, optics_points, OpticsParams};

fn bubble_params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 10 }
}

#[test]
fn ds2_bubbles_match_ground_truth_and_reference() {
    let data = ds2(&Ds2Params { n: 4_000, sigma: 2.0 }, 1);
    let reference = optics_points(&data.data, &OpticsParams { eps: 10.0, min_pts: 10 });
    let ref_labels = extract_dbscan(&reference, 4.0, data.len());
    assert!(adjusted_rand_index(&data.labels, &ref_labels) > 0.99, "reference itself is clean");

    for out in [
        optics_sa_bubbles(&data.data, 40, 7, &bubble_params()).unwrap(),
        optics_cf_bubbles(&data.data, 40, &BirchParams::default(), &bubble_params()).unwrap(),
    ] {
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), data.len(), "lost objects problem must be solved");
        let labels = expanded.extract_dbscan(4.0);
        let ari_truth = adjusted_rand_index(&data.labels, &labels);
        let ari_ref = adjusted_rand_index(&ref_labels, &labels);
        assert!(ari_truth > 0.95, "bubbles vs truth ARI {ari_truth}");
        assert!(ari_ref > 0.95, "bubbles vs reference ARI {ari_ref}");
    }
}

#[test]
fn ds2_weighted_recovers_cluster_sizes() {
    let data = ds2(&Ds2Params { n: 4_000, sigma: 2.0 }, 2);
    let out =
        optics_sa_weighted(&data.data, 40, 3, &OpticsParams { eps: f64::INFINITY, min_pts: 2 })
            .unwrap();
    let expanded = out.expanded.as_ref().unwrap();
    assert_eq!(expanded.len(), data.len());
    // Size distortion solved: every original object appears exactly once.
    let mut order = expanded.order();
    order.sort_unstable();
    assert_eq!(order, (0..data.len() as u32).collect::<Vec<_>>());
}

#[test]
fn naive_pipelines_expose_all_three_problems() {
    let data = ds2(&Ds2Params { n: 4_000, sigma: 2.0 }, 3);
    let sa = optics_sa_naive(&data.data, 40, 3, &OpticsParams { eps: f64::INFINITY, min_pts: 2 })
        .unwrap();
    // Lost objects: only the sample is in the result.
    assert!(sa.expanded.is_none());
    assert_eq!(sa.rep_ordering.len(), 40);
    // Size distortion: a cluster occupies ~8 of 40 positions, not 800.
    let cf = optics_cf_naive(
        &data.data,
        40,
        &BirchParams::default(),
        &OpticsParams { eps: f64::INFINITY, min_pts: 2 },
    )
    .unwrap();
    assert!(cf.rep_ordering.len() <= 40);
}

#[test]
fn ds1_bubbles_preserve_reference_structure() {
    let data = ds1(&Ds1Params { n: 6_000, ..Ds1Params::default() }, 4);
    // Reference cut calibrated for this density (see bench::common).
    let min_pts = 10;
    let cut = 120.0 * ((min_pts as f64) / (data.len() as f64)).sqrt();
    let reference = optics_points(&data.data, &OpticsParams { eps: 3.0 * cut, min_pts });
    let ref_labels = extract_dbscan(&reference, cut, data.len());

    let out = optics_sa_bubbles(&data.data, 120, 9, &bubble_params()).unwrap();
    let labels = out.expanded.as_ref().unwrap().extract_dbscan(cut);
    let ari = adjusted_rand_index(&ref_labels, &labels);
    assert!(ari > 0.8, "bubble clustering diverges from reference: ARI {ari}");
}

#[test]
fn bubbles_beat_weighted_on_structure() {
    // The paper's core claim: at high compression, bubbles preserve the
    // structure weighted expansion cannot.
    let data = ds1(&Ds1Params { n: 8_000, ..Ds1Params::default() }, 5);
    let min_pts = 10;
    let cut = 120.0 * ((min_pts as f64) / (data.len() as f64)).sqrt();
    let reference = optics_points(&data.data, &OpticsParams { eps: 3.0 * cut, min_pts });
    let ref_labels = extract_dbscan(&reference, cut, data.len());

    let k = 40; // compression factor 200
    let bub = optics_sa_bubbles(&data.data, k, 11, &bubble_params()).unwrap();
    let ari_bub =
        adjusted_rand_index(&ref_labels, &bub.expanded.as_ref().unwrap().extract_dbscan(cut));

    let wgt =
        optics_sa_weighted(&data.data, k, 11, &OpticsParams { eps: f64::INFINITY, min_pts: 2 })
            .unwrap();
    // Weighted plots live on the representative scale; give the variant
    // its best shot with an adaptive cut (4x median finite reachability).
    let values = wgt.expanded.as_ref().unwrap().reachabilities();
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    let wcut = 4.0 * finite[finite.len() / 2];
    let ari_wgt =
        adjusted_rand_index(&ref_labels, &wgt.expanded.as_ref().unwrap().extract_dbscan(wcut));

    assert!(
        ari_bub > ari_wgt,
        "bubbles ({ari_bub:.3}) must beat weighted ({ari_wgt:.3}) at factor 200"
    );
    assert!(ari_bub > 0.75, "bubble quality too low: {ari_bub:.3}");
}

#[test]
fn cf_weighted_and_bubbles_recover_all_objects() {
    let data = ds2(&Ds2Params { n: 3_000, sigma: 2.0 }, 6);
    for out in [
        optics_cf_weighted(
            &data.data,
            30,
            &BirchParams::default(),
            &OpticsParams { eps: f64::INFINITY, min_pts: 2 },
        )
        .unwrap(),
        optics_cf_bubbles(&data.data, 30, &BirchParams::default(), &bubble_params()).unwrap(),
    ] {
        let expanded = out.expanded.as_ref().unwrap();
        let mut order = expanded.order();
        order.sort_unstable();
        assert_eq!(order, (0..data.len() as u32).collect::<Vec<_>>());
    }
}

#[test]
fn pipelines_are_deterministic() {
    let data = ds2(&Ds2Params { n: 2_000, sigma: 2.0 }, 8);
    let a = optics_sa_bubbles(&data.data, 25, 5, &bubble_params()).unwrap();
    let b = optics_sa_bubbles(&data.data, 25, 5, &bubble_params()).unwrap();
    assert_eq!(a.rep_ordering, b.rep_ordering);
    assert_eq!(a.expanded, b.expanded);
}

#[test]
fn compression_timings_dominate_at_high_compression() {
    // At extreme compression the O(k²) clustering cost is negligible; the
    // single data pass (compression) dominates — the basis of the paper's
    // linear scalability claim.
    let data = ds1(&Ds1Params { n: 20_000, ..Ds1Params::default() }, 10);
    let out = optics_sa_bubbles(&data.data, 20, 5, &bubble_params()).unwrap();
    assert!(out.timings.compression >= out.timings.clustering);
}
