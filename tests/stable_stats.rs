//! Shift-invariance regression tests for the stable sufficient statistics:
//! the BETULA-style (n, mean, ssd) representation must report the same
//! extent/diameter for a cluster translated by 1e8 as for its
//! origin-centered copy, where the classical (n, LS, ss) closed form
//! loses every significant digit to catastrophic cancellation.

use data_bubbles::DataBubble;
use db_birch::Cf;

/// The classical diameter closed form the paper states (Definition 10 /
/// Corollary 1): `sqrt((2·n·ss − 2·|LS|²) / (n·(n−1)))`, computed exactly
/// as an implementation over raw (n, LS, ss) sums would.
fn naive_diameter(points: &[[f64; 2]]) -> f64 {
    let n = points.len() as f64;
    let mut ls = [0.0f64; 2];
    let mut ss = 0.0f64;
    for p in points {
        ls[0] += p[0];
        ls[1] += p[1];
        ss += p[0] * p[0] + p[1] * p[1];
    }
    let ls_sq = ls[0] * ls[0] + ls[1] * ls[1];
    let radicand = (2.0 * n * ss - 2.0 * ls_sq) / (n * (n - 1.0));
    radicand.max(0.0).sqrt()
}

fn cf_of(points: &[[f64; 2]]) -> Cf {
    let mut cf = Cf::empty(2);
    for p in points {
        cf.add_point(p);
    }
    cf
}

fn shifted(points: &[[f64; 2]], offset: f64) -> Vec<[f64; 2]> {
    points.iter().map(|p| [p[0] + offset, p[1] + offset]).collect()
}

/// Two points one unit apart: true diameter (avg pairwise distance) is 1.
const PAIR: [[f64; 2]; 2] = [[0.0, 0.0], [1.0, 0.0]];

#[test]
fn two_point_cluster_extent_is_shift_invariant_at_1e8() {
    let origin = DataBubble::from_cf(&cf_of(&PAIR));
    let far = DataBubble::from_cf(&cf_of(&shifted(&PAIR, 1.0e8)));
    assert!(
        (origin.extent() - far.extent()).abs() < 1e-6,
        "extent drifted under 1e8 shift: {} vs {}",
        origin.extent(),
        far.extent()
    );
    assert!((origin.extent() - 1.0).abs() < 1e-12, "origin extent wrong: {}", origin.extent());
}

#[test]
fn naive_closed_form_collapses_where_stable_form_does_not() {
    // Documents WHY the representation changed: at 1e8 offset the naive
    // sum-of-squares diameter is pure cancellation noise (typically 0),
    // while the stable form stays within 1e-6 of the true value 1.
    let far = shifted(&PAIR, 1.0e8);
    let naive = naive_diameter(&far);
    assert!(
        (naive - 1.0).abs() > 0.5,
        "naive closed form unexpectedly survived the 1e8 offset: {naive}"
    );
    let stable = cf_of(&far).diameter();
    assert!((stable - 1.0).abs() < 1e-6, "stable diameter off at 1e8: {stable}");
}

#[test]
fn diameter_stays_stable_across_offset_sweep() {
    // A 40-point blob with known spread, translated progressively further
    // out. The stable diameter must agree with the origin value at every
    // offset; the naive form must have failed by 1e8.
    let blob: Vec<[f64; 2]> =
        (0..40).map(|i| [(i % 8) as f64 * 0.25, (i / 8) as f64 * 0.25]).collect();
    let reference = cf_of(&blob).diameter();
    assert!(reference > 0.5, "blob should have nontrivial spread: {reference}");
    for offset in [0.0, 1.0e4, 1.0e6, 1.0e8] {
        let d = cf_of(&shifted(&blob, offset)).diameter();
        assert!(
            (d - reference).abs() < 1e-6,
            "diameter at offset {offset:e}: {d} vs reference {reference}"
        );
    }
    let naive_far = naive_diameter(&shifted(&blob, 1.0e8));
    assert!(
        (naive_far - reference).abs() > 0.1,
        "naive form unexpectedly accurate at 1e8: {naive_far} vs {reference}"
    );
}

#[test]
fn nndist_is_monotone_in_k_under_extreme_offset() {
    // Lemma 1 monotonicity must survive the translation: nndist(k) is
    // nondecreasing in k for a far-from-origin bubble, with no NaN.
    let blob: Vec<[f64; 2]> =
        (0..64).map(|i| [(i % 8) as f64 * 0.5, (i / 8) as f64 * 0.5]).collect();
    let bubble = DataBubble::from_cf(&cf_of(&shifted(&blob, 1.0e8)));
    let mut prev = 0.0;
    for k in 1..=80 {
        let d = bubble.nndist(k);
        assert!(d.is_finite(), "nndist({k}) not finite: {d}");
        assert!(d >= prev, "nndist not monotone at k={k}: {d} < {prev}");
        prev = d;
    }
    // And it matches the origin-centered bubble's nndist exactly in shape.
    let origin = DataBubble::from_cf(&cf_of(&blob));
    for k in [1, 8, 32, 64] {
        assert!(
            (bubble.nndist(k) - origin.nndist(k)).abs() < 1e-6,
            "nndist({k}) drifted under shift"
        );
    }
}

#[test]
fn merged_diameter_is_shift_invariant() {
    // The pairwise-merge path (Chan/Golub/LeVeque) must be as stable as
    // the incremental path: merging two half-blobs far from the origin
    // gives the same diameter as merging them at the origin.
    let left: Vec<[f64; 2]> = (0..20).map(|i| [i as f64 * 0.1, 0.0]).collect();
    let right: Vec<[f64; 2]> = (0..20).map(|i| [i as f64 * 0.1 + 5.0, 0.0]).collect();
    let at_origin = {
        let mut cf = cf_of(&left);
        cf += &cf_of(&right);
        cf.diameter()
    };
    let far = {
        let mut cf = cf_of(&shifted(&left, 1.0e8));
        cf += &cf_of(&shifted(&right, 1.0e8));
        cf.diameter()
    };
    assert!((at_origin - far).abs() < 1e-6, "merged diameter drifted: {at_origin} vs {far}");
}
