//! Incremental-vs-batch differential suite for the streaming ingest path
//! (ISSUE 8): absorbing a stream — one-by-one, via `absorb_all`, or
//! through the service — must be bit-identical to a batch classification
//! against the same representatives, and a post-absorb recluster must
//! equal a recluster of the equivalent batch-built compression.

use std::sync::Arc;
use std::time::Duration;

use data_bubbles::pipeline::{
    recluster_from_compression, run_pipeline, Compressor, PipelineConfig, Recovery,
};
use db_optics::OpticsParams;
use db_sampling::{
    accumulate_stats, compress_by_sampling, nn_classify, CompressedSample, IncrementalCompression,
};
use db_serve::{BubbleService, ServiceConfig};
use db_spatial::Dataset;

const SEED: u64 = 2001;
const K: usize = 20;

fn blobs(n: usize, seed: u64) -> Dataset {
    let params = db_datagen::SeparatedBlobsParams { n, ..Default::default() };
    db_datagen::separated_blobs(&params, seed).data
}

fn concat(a: &Dataset, b: &Dataset) -> Dataset {
    let mut out = Dataset::new(a.dim()).expect("dim");
    for row in a.iter().chain(b.iter()) {
        out.push(row).expect("finite rows");
    }
    out
}

fn optics() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 20 }
}

fn pipeline_cfg(seed: u64) -> PipelineConfig {
    PipelineConfig::new(K, Compressor::Sample { seed }, Recovery::Bubbles, optics())
}

/// The batch reference: classify base+stream against the base's sampled
/// representatives in one pass.
fn batch_reference(base: &Dataset, stream: &Dataset) -> (CompressedSample, Dataset) {
    let c = compress_by_sampling(base, K, SEED).expect("compress");
    let combined = concat(base, stream);
    let assignment = nn_classify(&combined, &c.reps);
    let stats = accumulate_stats(&combined, &assignment, c.k());
    (CompressedSample { sample_ids: c.sample_ids, reps: c.reps, stats, assignment }, combined)
}

#[test]
fn absorb_stream_is_bit_identical_to_batch_classification() {
    let base = blobs(300, 1);
    let stream = blobs(80, 2);
    let (batch, _) = batch_reference(&base, &stream);

    let c = compress_by_sampling(&base, K, SEED).expect("compress");

    // One by one.
    let mut one_by_one = IncrementalCompression::from_sample(&c);
    for row in stream.iter() {
        one_by_one.try_absorb(row).expect("absorb");
    }
    assert_eq!(one_by_one.assignment(), batch.assignment.as_slice());
    assert_eq!(one_by_one.stats(), batch.stats.as_slice());

    // Whole stream atomically.
    let mut atomic = IncrementalCompression::from_sample(&c);
    atomic.try_absorb_all(&stream).expect("absorb_all");
    assert_eq!(atomic.assignment(), batch.assignment.as_slice());
    assert_eq!(atomic.stats(), batch.stats.as_slice());

    // Uneven batch splits.
    for batch_size in [3, 17, 79] {
        let mut split = IncrementalCompression::from_sample(&c);
        let rows: Vec<&[f64]> = stream.iter().collect();
        for chunk in rows.chunks(batch_size) {
            let mut part = Dataset::new(stream.dim()).expect("dim");
            for row in chunk {
                part.push(row).expect("finite");
            }
            split.try_absorb_all(&part).expect("absorb_all chunk");
        }
        assert_eq!(split.assignment(), batch.assignment.as_slice(), "batch_size={batch_size}");
        assert_eq!(split.stats(), batch.stats.as_slice(), "batch_size={batch_size}");
    }
}

/// A recluster of a zero-absorb compression is bit-for-bit the
/// `run_pipeline` output the compression came from: same representatives,
/// stats and assignment must yield the same ordering and expansion.
#[test]
fn zero_absorb_recluster_matches_run_pipeline() {
    let ds = blobs(300, 4);
    let cfg = pipeline_cfg(SEED);
    let fresh = run_pipeline(&ds, &cfg).expect("pipeline");

    let inc =
        IncrementalCompression::from_sample(&compress_by_sampling(&ds, K, SEED).expect("compress"));
    let reclustered = recluster_from_compression(&inc, &cfg).expect("recluster");

    assert_eq!(reclustered.rep_ordering, fresh.rep_ordering);
    assert_eq!(reclustered.expanded, fresh.expanded);
    assert_eq!(reclustered.n_representatives, fresh.n_representatives);
}

/// After absorbing a stream, a recluster equals the recluster of the
/// equivalent batch-built compression (same reps, batch-classified stats
/// and assignment) — the incremental path loses nothing.
#[test]
fn post_absorb_recluster_equals_equivalent_batch_compression() {
    let base = blobs(300, 5);
    let stream = blobs(80, 6);
    let cfg = pipeline_cfg(SEED);

    let c = compress_by_sampling(&base, K, SEED).expect("compress");
    let mut incremental = IncrementalCompression::from_sample(&c);
    incremental.try_absorb_all(&stream).expect("absorb");

    let (batch, _) = batch_reference(&base, &stream);
    let batch_inc = IncrementalCompression::from_sample(&batch);

    let a = recluster_from_compression(&incremental, &cfg).expect("recluster incremental");
    let b = recluster_from_compression(&batch_inc, &cfg).expect("recluster batch");
    assert_eq!(a.rep_ordering, b.rep_ordering);
    assert_eq!(a.expanded, b.expanded);
}

/// The service's background recluster computes exactly what a direct
/// `recluster_from_compression` of the same compression computes — HTTP,
/// caching and threading change nothing about the output.
#[test]
fn service_recluster_matches_direct_recluster() {
    let base = blobs(300, 7);
    let stream = blobs(80, 8);

    let c = compress_by_sampling(&base, K, SEED).expect("compress");
    let svc = Arc::new(
        BubbleService::new(
            IncrementalCompression::from_sample(&c),
            ServiceConfig::new(optics(), 4.0),
        )
        .expect("service"),
    );
    svc.ingest(&stream).expect("ingest");
    let generation = svc.force_recluster();
    assert!(svc.wait_for_generation(generation, Duration::from_secs(30)));
    let artifact = svc.artifact();

    let mut reference = IncrementalCompression::from_sample(&c);
    reference.try_absorb_all(&stream).expect("absorb");
    let direct = recluster_from_compression(&reference, &pipeline_cfg(SEED)).expect("recluster");

    assert_eq!(artifact.output.rep_ordering, direct.rep_ordering);
    assert_eq!(artifact.output.expanded, direct.expanded);
    svc.shutdown();
}
