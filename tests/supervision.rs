//! Chaos suite for the run-supervision layer: deadlines, cooperative
//! cancellation, worker-panic isolation, fault injection, the graceful
//! degradation ladder, and the matrix byte budget.
//!
//! The fault-injection spec is process-global (it models the `DB_FAULT`
//! environment variable), so every test that arms it serializes on
//! [`FAULTS`] and clears the spec before releasing the lock.

use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use data_bubbles::pipeline::{
    run_pipeline, run_pipeline_supervised, CancelToken, Compressor, PipelineConfig, PipelineError,
    PipelineOutput, PipelinePhase, Recovery, RunBudget,
};
use db_birch::BirchParams;
use db_optics::OpticsParams;
use db_spatial::Dataset;
use db_supervise::fault;

/// Serializes tests that set the process-global fault spec.
static FAULTS: Mutex<()> = Mutex::new(());

/// Arms `spec` for the duration of the returned guard; the spec is
/// cleared when the guard drops, even on panic.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn arm(spec: &str) -> FaultGuard {
    let lock = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::set_spec(Some(spec));
    FaultGuard(lock)
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        fault::set_spec(None);
    }
}

/// Large enough that classification takes its threaded path (needs at
/// least 1024 points) and statistics accumulation spans multiple 4096-
/// point blocks, so every parallel fault point is actually reachable.
fn big_two_squares() -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..4600 {
        let (x, y) = ((i % 50) as f64 * 0.2, (i / 50) as f64 * 0.2);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 200.0, y]).unwrap();
    }
    ds
}

fn params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 12 }
}

fn cfg(k: usize, compressor: Compressor, recovery: Recovery) -> PipelineConfig {
    let mut cfg = PipelineConfig::new(k, compressor, recovery, params());
    // The container may report a single core; force real workers so the
    // threaded paths (and their fault points) are exercised.
    cfg.threads = NonZeroUsize::new(2);
    cfg
}

fn assert_identical(base: &PipelineOutput, other: &PipelineOutput, ctx: &str) {
    assert_eq!(base.n_representatives, other.n_representatives, "{ctx}: representative count");
    assert_eq!(base.rep_ordering, other.rep_ordering, "{ctx}: rep ordering differs");
    assert_eq!(base.expanded, other.expanded, "{ctx}: expanded ordering differs");
}

// ---------------------------------------------------------------- panics

/// Worker panics in every parallel phase must surface as typed
/// `WorkerPanic` errors with the right phase — the process (and the next
/// run) survives.
#[test]
fn injected_worker_panics_surface_as_typed_errors() {
    let ds = big_two_squares();
    // (fault point, phase it must be attributed to, variant that reaches it)
    let cases: Vec<(&str, PipelinePhase, Compressor, Recovery)> = vec![
        (
            "classify.worker:panic",
            PipelinePhase::Compression,
            Compressor::Sample { seed: 7 },
            Recovery::Weighted,
        ),
        (
            "classify.worker:panic",
            PipelinePhase::Compression,
            Compressor::Birch(BirchParams::default()),
            Recovery::Bubbles,
        ),
        (
            "stats.worker:panic",
            PipelinePhase::Compression,
            Compressor::Sample { seed: 7 },
            Recovery::Bubbles,
        ),
        (
            "matrix.worker:panic",
            PipelinePhase::Clustering,
            Compressor::Sample { seed: 7 },
            Recovery::Bubbles,
        ),
        (
            "matrix.worker:panic",
            PipelinePhase::Clustering,
            Compressor::Birch(BirchParams::default()),
            Recovery::Bubbles,
        ),
    ];
    for (spec, want_phase, compressor, recovery) in cases {
        let c = cfg(40, compressor.clone(), recovery);
        let baseline = {
            let _quiet = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            run_pipeline(&ds, &c).expect("clean run")
        };
        {
            let _armed = arm(spec);
            match run_pipeline(&ds, &c) {
                Err(PipelineError::WorkerPanic { phase, message }) => {
                    assert_eq!(phase, want_phase, "{spec}: wrong phase");
                    assert!(
                        message.contains("injected fault"),
                        "{spec}: panic payload lost: {message}"
                    );
                }
                other => panic!("{spec}: expected WorkerPanic, got {other:?}"),
            }
        }
        // The panic was isolated: an immediate clean re-run is unaffected
        // and bit-identical.
        let _quiet = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let retry = run_pipeline(&ds, &c).expect("re-run after isolated panic");
        assert_identical(&baseline, &retry, spec);
    }
}

// ------------------------------------------------------------ cancel/deadline

/// A cancel fault at each phase boundary yields `Cancelled` attributed to
/// that phase, with no partial output and no panic.
#[test]
fn cancel_faults_are_attributed_to_their_phase() {
    let ds = big_two_squares();
    for (spec, want_phase) in [
        ("compression:cancel", PipelinePhase::Compression),
        ("clustering:cancel", PipelinePhase::Clustering),
        ("recovery:cancel", PipelinePhase::Recovery),
    ] {
        let _armed = arm(spec);
        let token = CancelToken::new();
        let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
        c.cancel = Some(token);
        match run_pipeline(&ds, &c) {
            Err(PipelineError::Cancelled { phase }) => {
                assert_eq!(phase, want_phase, "{spec}: wrong phase");
            }
            other => panic!("{spec}: expected Cancelled, got {other:?}"),
        }
    }
}

/// Deadlines are honored within 50ms on every adversarial corpus, for
/// both compression backends, with typed phase attribution.
#[test]
fn deadlines_are_honored_within_50ms_on_adversarial_corpora() {
    let _quiet = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let corpora: Vec<(&str, Dataset)> = vec![
        ("big_two_squares", big_two_squares()),
        ("far_offset", db_datagen::adversarial::far_offset_clusters(42).build().unwrap()),
        ("duplicates", db_datagen::adversarial::zero_variance_duplicates(0).build().unwrap()),
        ("singletons", db_datagen::adversarial::singleton_flood(3).build().unwrap()),
    ];
    for (name, ds) in &corpora {
        let k = (ds.len() / 8).clamp(2, 40);
        for compressor in
            [Compressor::Sample { seed: 11 }, Compressor::Birch(BirchParams::default())]
        {
            let mut c = cfg(k, compressor, Recovery::Bubbles);
            c.budget = RunBudget::with_deadline(Duration::from_micros(200));
            let t0 = Instant::now();
            let result = run_pipeline(ds, &c);
            let elapsed = t0.elapsed();
            match result {
                Err(PipelineError::DeadlineExceeded { .. }) => {}
                // A sub-millisecond corpus can legitimately finish first.
                Ok(_) => continue,
                other => panic!("{name}: expected DeadlineExceeded, got {other:?}"),
            }
            assert!(
                elapsed < Duration::from_millis(50) + Duration::from_micros(200),
                "{name}: took {elapsed:?} to react to a 200µs deadline"
            );
        }
    }
}

/// A deadline that fires mid-phase (forced by a delay fault inside the
/// matrix workers) is honored as soon as the workers' next check runs and
/// is attributed to the phase that overran. Timings are calibrated
/// against a clean run so the test holds on slow debug builds.
#[test]
fn mid_phase_deadline_is_attributed_to_the_overrunning_phase() {
    let ds = big_two_squares();
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);

    let _armed = {
        let lock = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let t0 = Instant::now();
        run_pipeline(&ds, &c).expect("clean calibration run");
        let clean = t0.elapsed();
        // Deadline comfortably above the whole clean run (so it cannot
        // fire before clustering); worker delay comfortably above the
        // deadline (so it fires during the injected stall).
        c.budget = RunBudget::with_deadline(clean * 3 + Duration::from_millis(50));
        let delay = 2 * (clean * 3 + Duration::from_millis(50)) + Duration::from_millis(50);
        fault::set_spec(Some(&format!("matrix.worker:delay:{}", delay.as_millis())));
        FaultGuard(lock)
    };

    match run_pipeline(&ds, &c) {
        Err(PipelineError::DeadlineExceeded { phase, elapsed }) => {
            assert_eq!(phase, PipelinePhase::Clustering);
            assert!(elapsed >= c.budget.deadline.expect("deadline set"));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

// ------------------------------------------------------------------ ladder

/// A slow distance-matrix build degrades in two rungs (halve k, then
/// disable the matrix) and then succeeds, recording both rungs and
/// reporting degraded health.
/// Calibrates a (deadline, armed fault) pair against a clean run of
/// `c` so that any attempt hitting `fault_point`'s delay overruns the
/// deadline while a clean attempt finishes well inside it — robust to
/// debug-build speed.
fn arm_overrun(ds: &Dataset, c: &mut PipelineConfig, fault_point: &str) -> FaultGuard {
    let lock = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let t0 = Instant::now();
    run_pipeline(ds, c).expect("clean calibration run");
    let clean = t0.elapsed();
    let deadline = clean * 3 + Duration::from_millis(50);
    let delay = 2 * deadline + Duration::from_millis(50);
    c.budget = RunBudget::with_deadline(deadline);
    fault::set_spec(Some(&format!("{fault_point}:delay:{}", delay.as_millis())));
    FaultGuard(lock)
}

#[test]
fn ladder_disables_the_matrix_when_its_build_is_what_overruns() {
    let ds = big_two_squares();
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    let _armed = arm_overrun(&ds, &mut c, "matrix.worker");
    db_obs::health::reset();
    let out = run_pipeline_supervised(&ds, &c).expect("ladder should recover");
    let actions: Vec<&str> = out.degradations.iter().map(|d| d.action.as_str()).collect();
    assert_eq!(actions, ["halved k to 20", "disabled the distance matrix"], "rungs taken");
    for d in &out.degradations {
        assert!(
            matches!(d.cause, PipelineError::DeadlineExceeded { .. }),
            "rung cause must be the deadline: {:?}",
            d.cause
        );
    }
    assert_eq!(db_obs::health::current().status, db_obs::health::Status::Degraded);
    assert!(db_obs::health::current().detail.contains("disabled the distance matrix"));
}

/// When the parallel classification itself is slow, only the final rung
/// (single-threaded execution, which bypasses the worker fault point)
/// rescues the run — all three rungs are recorded.
#[test]
fn ladder_falls_back_to_a_single_thread_as_the_last_rung() {
    let ds = big_two_squares();
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    let _armed = arm_overrun(&ds, &mut c, "classify.worker");
    db_obs::health::reset();
    let out = run_pipeline_supervised(&ds, &c).expect("single-threaded rung should recover");
    let actions: Vec<&str> = out.degradations.iter().map(|d| d.action.as_str()).collect();
    assert_eq!(
        actions,
        ["halved k to 20", "disabled the distance matrix", "dropped to a single thread"],
        "rungs taken"
    );
    assert_eq!(db_obs::health::current().status, db_obs::health::Status::Degraded);
}

/// When even the coarsest configuration cannot meet the deadline, the
/// ladder gives up with the typed error and reports failing health.
#[test]
fn exhausted_ladder_reports_failing_health() {
    let ds = big_two_squares();
    // A delay at the clustering boundary runs on the pipeline thread
    // itself, so no rung can dodge it.
    let _armed = arm("clustering:delay:80");
    db_obs::health::reset();
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    c.budget = RunBudget::with_deadline(Duration::from_millis(25));
    match run_pipeline_supervised(&ds, &c) {
        Err(PipelineError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded after the full ladder, got {other:?}"),
    }
    assert_eq!(db_obs::health::current().status, db_obs::health::Status::Failing);
    db_obs::health::reset();
}

/// Cancellation is a caller decision, never retried by the ladder.
#[test]
fn ladder_does_not_retry_cancellation() {
    let ds = big_two_squares();
    let _armed = arm("clustering:cancel");
    db_obs::health::reset();
    let token = CancelToken::new();
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    c.cancel = Some(token);
    match run_pipeline_supervised(&ds, &c) {
        Err(PipelineError::Cancelled { phase }) => {
            assert_eq!(phase, PipelinePhase::Clustering);
        }
        other => panic!("expected Cancelled (no retries), got {other:?}"),
    }
    assert_eq!(db_obs::health::current().status, db_obs::health::Status::Failing);
    db_obs::health::reset();
}

/// A clean supervised run records no degradations and reports ok health.
#[test]
fn unconstrained_supervised_run_is_clean_and_identical_to_unsupervised() {
    let ds = big_two_squares();
    let _quiet = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    db_obs::health::reset();
    let c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    let plain = run_pipeline(&ds, &c).expect("plain run");
    let supervised = run_pipeline_supervised(&ds, &c).expect("supervised run");
    assert!(supervised.degradations.is_empty());
    assert_identical(&plain, &supervised, "supervised vs plain");
    assert_eq!(db_obs::health::current().status, db_obs::health::Status::Ok);
    db_obs::health::reset();
}

// ----------------------------------------------------------- matrix budget

/// `max_matrix_bytes` skips the precomputed matrix without changing a bit
/// of the output (the on-the-fly path is exact) and without counting as a
/// degradation.
#[test]
fn matrix_byte_budget_skips_the_matrix_bit_identically() {
    let ds = big_two_squares();
    let _quiet = FAULTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut c = cfg(40, Compressor::Sample { seed: 7 }, Recovery::Bubbles);
    let unconstrained = run_pipeline(&ds, &c).expect("unconstrained");

    // 40×40×12 bytes = 19,200: a 1,000-byte cap must force the skip.
    let skipped_before = db_obs::snapshot().counter("pipeline.matrix_skipped_budget").unwrap_or(0);
    c.budget.max_matrix_bytes = Some(1_000);
    let capped = run_pipeline_supervised(&ds, &c).expect("capped");
    assert_identical(&unconstrained, &capped, "matrix byte cap");
    assert!(capped.degradations.is_empty(), "a quality-preserving skip is not a degradation");
    if cfg!(feature = "metrics") {
        let skipped = db_obs::snapshot().counter("pipeline.matrix_skipped_budget").unwrap_or(0);
        assert!(skipped > skipped_before, "skip must be counted");
    }

    // A cap generous enough for the matrix changes nothing either.
    c.budget.max_matrix_bytes = Some(usize::MAX);
    let roomy = run_pipeline(&ds, &c).expect("roomy cap");
    assert_identical(&unconstrained, &roomy, "roomy matrix byte cap");
}

// ------------------------------------------------------------- fault spec

/// The spec parser accepts the documented grammar and rejects garbage
/// without panicking the process (the env path warns and ignores).
#[test]
fn fault_spec_grammar() {
    assert!(fault::parse_spec("compression:panic").is_ok());
    assert!(fault::parse_spec("clustering:delay:25,recovery:cancel").is_ok());
    assert!(fault::parse_spec("nonsense").is_err());
    assert!(fault::parse_spec("compression:explode").is_err());
    assert!(fault::parse_spec("clustering:delay:soon").is_err());
}
