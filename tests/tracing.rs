//! End-to-end event-tracing tests over real pipeline runs (the
//! acceptance checks of the tracing subsystem): per-phase trace spans
//! must agree with `PipelineTimings`, and every pipeline variant must
//! emit a self-contained, balanced trace under its own run id.
//!
//! Only meaningful with the `tracing` feature (the default); the trace
//! ring is process-global, so each test filters by its runs' ids instead
//! of locking.
#![cfg(feature = "tracing")]

use std::collections::HashMap;

use data_bubbles::pipeline::{
    optics_cf_bubbles, optics_cf_naive, optics_cf_weighted, optics_sa_bubbles, optics_sa_naive,
    optics_sa_weighted, PipelineOutput,
};
use db_birch::BirchParams;
use db_obs::{TraceEvent, TraceEventKind};
use db_optics::OpticsParams;
use db_spatial::Dataset;

/// Two dense squares far apart, 800 points each.
fn two_squares() -> Dataset {
    let mut ds = Dataset::new(2).unwrap();
    for i in 0..800 {
        let (x, y) = ((i % 40) as f64 * 0.25, (i / 40) as f64 * 0.25);
        ds.push(&[x, y]).unwrap();
        ds.push(&[x + 200.0, y]).unwrap();
    }
    ds
}

fn params() -> OpticsParams {
    OpticsParams { eps: f64::INFINITY, min_pts: 20 }
}

/// Duration of the single `name` span within `events`, in nanoseconds.
fn span_duration_ns(events: &[TraceEvent], name: &str) -> u64 {
    let begin: Vec<&TraceEvent> =
        events.iter().filter(|e| e.name == name && e.kind == TraceEventKind::Begin).collect();
    let end: Vec<&TraceEvent> =
        events.iter().filter(|e| e.name == name && e.kind == TraceEventKind::End).collect();
    assert_eq!(begin.len(), 1, "expected exactly one Begin for {name}");
    assert_eq!(end.len(), 1, "expected exactly one End for {name}");
    end[0].ts_ns - begin[0].ts_ns
}

#[test]
fn phase_trace_spans_match_pipeline_timings() {
    db_obs::trace::set_enabled(true);
    let ds = two_squares();
    let out = optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
    let events = db_obs::trace::events_for_run(out.run_id);
    assert!(!events.is_empty(), "a traced run must emit events");

    // Acceptance: each phase's Begin..End duration agrees with the
    // wall-clock `PipelineTimings` within 5% (plus a small absolute slack
    // for sub-millisecond phases, where the Instant reads and the event
    // records straddle each other).
    for (name, measured) in [
        ("pipeline.compression", out.timings.compression),
        ("pipeline.clustering", out.timings.clustering),
        ("pipeline.recovery", out.timings.recovery),
    ] {
        let traced_ns = span_duration_ns(&events, name) as f64;
        let measured_ns = measured.as_nanos() as f64;
        let tolerance = measured_ns * 0.05 + 200_000.0;
        assert!(
            (traced_ns - measured_ns).abs() <= tolerance,
            "{name}: trace {traced_ns} ns vs timing {measured_ns} ns (tolerance {tolerance} ns)"
        );
    }

    // The run span encloses the phases.
    let run_ns = span_duration_ns(&events, "pipeline.run");
    let phases_ns: u64 = ["pipeline.compression", "pipeline.clustering", "pipeline.recovery"]
        .iter()
        .map(|n| span_duration_ns(&events, n))
        .sum();
    assert!(run_ns >= phases_ns, "run {run_ns} ns < phase sum {phases_ns} ns");

    // Instant markers carry their arguments through.
    let start = events
        .iter()
        .find(|e| e.name == "pipeline.start" && e.kind == TraceEventKind::Instant)
        .expect("pipeline.start instant");
    assert_eq!((start.arg_name, start.arg), ("n_points", ds.len() as u64));
    let compressed = events
        .iter()
        .find(|e| e.name == "pipeline.compressed")
        .expect("pipeline.compressed instant");
    assert_eq!(compressed.arg, out.n_representatives as u64);
}

/// Asserts `events` form a well-nested trace: on every thread each End
/// matches the most recent unmatched Begin, and nothing stays open.
fn assert_balanced(events: &[TraceEvent]) {
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    for e in events {
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            TraceEventKind::Begin => stack.push(e.name),
            TraceEventKind::End => {
                let open = stack.pop().unwrap_or_else(|| {
                    panic!("End of {} on tid {} without a Begin", e.name, e.tid)
                });
                assert_eq!(open, e.name, "mismatched End on tid {}", e.tid);
            }
            TraceEventKind::Instant => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "tid {tid} left spans open: {stack:?}");
    }
}

#[test]
fn every_pipeline_variant_emits_a_self_contained_trace() {
    db_obs::trace::set_enabled(true);
    let ds = two_squares();
    let birch = BirchParams::default();
    let p = params();

    let outs: Vec<(&str, PipelineOutput)> = vec![
        ("sa_naive", optics_sa_naive(&ds, 40, 7, &p).unwrap()),
        ("cf_naive", optics_cf_naive(&ds, 40, &birch, &p).unwrap()),
        ("sa_weighted", optics_sa_weighted(&ds, 40, 7, &p).unwrap()),
        ("cf_weighted", optics_cf_weighted(&ds, 40, &birch, &p).unwrap()),
        ("sa_bubbles", optics_sa_bubbles(&ds, 40, 7, &p).unwrap()),
        ("cf_bubbles", optics_cf_bubbles(&ds, 40, &birch, &p).unwrap()),
    ];

    // Run ids are distinct across the six runs.
    let mut ids: Vec<u64> = outs.iter().map(|(_, o)| o.run_id).collect();
    ids.dedup();
    assert_eq!(ids.len(), 6, "run ids must be unique per run");

    for (variant, out) in &outs {
        let events = db_obs::trace::events_for_run(out.run_id);
        assert!(!events.is_empty(), "{variant}: no events");
        assert!(events.iter().all(|e| e.run_id == out.run_id));
        assert!(
            events.iter().any(|e| e.name == "pipeline.run"),
            "{variant}: missing pipeline.run span"
        );
        assert_balanced(&events);
    }

    // The member-recovering variants fan classification out to workers;
    // their linked chunk spans must record under the parent's run id.
    let sa_bubbles = &outs.iter().find(|(v, _)| *v == "sa_bubbles").unwrap().1;
    let events = db_obs::trace::events_for_run(sa_bubbles.run_id);
    if std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1) > 1 {
        assert!(
            events.iter().any(|e| e.name == "sampling.classify_chunk"),
            "worker spans missing from the parent run's trace"
        );
    }
}

#[test]
fn trace_export_of_a_run_is_valid_chrome_json() {
    db_obs::trace::set_enabled(true);
    let ds = two_squares();
    let out = optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
    let events = db_obs::trace::events_for_run(out.run_id);

    let json = db_obs::trace_json(&events);
    let doc = db_obs::Json::parse(&json).expect("valid Chrome trace JSON");
    let evs = doc.get("traceEvents").and_then(db_obs::Json::as_arr).unwrap();
    assert_eq!(evs.len(), events.len());

    let folded = db_obs::folded_stacks(&events);
    assert!(
        folded.lines().any(|l| l.starts_with("pipeline.run;pipeline.compression")),
        "folded stacks missing the phase hierarchy:\n{folded}"
    );
}
