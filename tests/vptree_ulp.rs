//! Pins the VP-tree's sqrt-space ε-predicate against the squared-surrogate
//! kernel path (closes the `// ORACLE:` note on `exact_range`).
//!
//! The coordinate indexes and the oracle decide ε-inclusion in *squared*
//! space: `d² ≤ fl(eps²)`, with `d²` straight from the block kernel. The
//! VP-tree is a metric index — an arbitrary metric has no squared space —
//! so its predicate is `fl(√d²) ≤ eps` on the distances its closure
//! returns. When `eps` is itself a reported neighbour distance
//! (`eps = fl(√e²)`), the two predicates can disagree, because squaring
//! the rounded square root can round *below* the original squared
//! distance (`fl(eps²) < e²`): the squared path then excludes the
//! boundary point that the sqrt path includes.
//!
//! This harness quantifies that divergence and pins it:
//!
//! * every membership disagreement sits **within one ulp of `eps`** —
//!   the disagreeing point's reported distance and `eps` are adjacent
//!   (or equal) floats;
//! * the seeded sweep **does find disagreements** (the pin is not
//!   vacuous — the two conventions really are different);
//! * in one dimension the predicates **never** disagree: round-to-nearest
//!   guarantees `fl(√fl(x·x))) = x`, so `eps²` round-trips exactly.

use db_oracle::{exact_knn, exact_range};
use db_spatial::{euclidean, Dataset, LinearScan, SpatialIndex, VpTree};

fn iters() -> u64 {
    std::env::var("KERNEL_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

fn random_dataset(rng: &mut db_rng::Rng, n: usize, dim: usize) -> Dataset {
    let mut ds = Dataset::new(dim).unwrap();
    let mut row = vec![0.0f64; dim];
    for _ in 0..n {
        for x in row.iter_mut() {
            *x = rng.gen_f64(-10.0, 10.0);
        }
        ds.push(&row).unwrap();
    }
    ds
}

/// Distance in units of ulps between two non-negative finite floats:
/// the number of representable doubles you must step from `a` to reach
/// `b`. 0 = identical bits, 1 = adjacent floats.
fn ulp_gap(a: f64, b: f64) -> u64 {
    assert!(a >= 0.0 && b >= 0.0 && a.is_finite() && b.is_finite());
    (a.to_bits() as i64 - b.to_bits() as i64).unsigned_abs()
}

/// Runs the sqrt-space VP-tree and the squared-surrogate paths (oracle
/// *and* production `LinearScan`) on `(q, eps)` and returns the ids that
/// only one convention reported, with their sqrt-space distances.
///
/// Asserts on the way that the production index agrees with the oracle
/// bit-for-bit — the divergence under test is *between conventions*, not
/// between implementations of the same convention.
fn membership_diff(
    ds: &Dataset,
    tree: &VpTree,
    scan: &LinearScan,
    q: &[f64],
    eps: f64,
) -> Vec<(usize, f64)> {
    let oracle = exact_range(ds, q, eps);
    let mut via_index = Vec::new();
    scan.range(ds, q, eps, &mut via_index);
    assert_eq!(
        via_index.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
        oracle.iter().map(|n| (n.id, n.dist.to_bits())).collect::<Vec<_>>(),
        "squared-surrogate paths must agree bit-for-bit (eps={eps})"
    );

    let dq = |id: usize| euclidean(ds.point(id), q);
    let mut via_vp = Vec::new();
    tree.range(&dq, eps, &mut via_vp);

    let in_sq: std::collections::BTreeSet<usize> = oracle.iter().map(|n| n.id).collect();
    let in_vp: std::collections::BTreeSet<usize> = via_vp.iter().map(|n| n.id).collect();
    in_vp.symmetric_difference(&in_sq).map(|&id| (id, dq(id))).collect()
}

#[test]
fn vptree_divergence_is_at_most_one_ulp_and_real() {
    let mut rng = db_rng::Rng::seed_from_u64(0x9e37_79b9_7f4a_7c15);
    let mut disagreements = 0u64;
    let mut max_gap = 0u64;
    for _ in 0..iters() {
        let dim = rng.gen_range_inclusive(2..=8);
        let n = rng.gen_range_inclusive(20..=120);
        let ds = random_dataset(&mut rng, n, dim);
        let metric = |a: usize, b: usize| euclidean(ds.point(a), ds.point(b));
        let tree = VpTree::build(ds.len(), &metric);
        let scan = LinearScan::build(&ds);

        let q = ds.point(rng.gen_range(0..ds.len())).to_vec();
        // eps values where the conventions can split: the *reported*
        // neighbour distances fl(√e²). Off-boundary eps values cannot
        // disagree (both predicates are exact there), so every k-NN
        // boundary is probed instead of random radii.
        for nb in exact_knn(&ds, &q, 8) {
            let eps = nb.dist;
            for (id, d) in membership_diff(&ds, &tree, &scan, &q, eps) {
                let gap = ulp_gap(d, eps);
                assert!(
                    gap <= 1,
                    "id {id}: sqrt-space distance {d} is {gap} ulps from eps {eps} \
                     (dim={dim}, n={n}) — divergence must stay within one ulp"
                );
                disagreements += 1;
                max_gap = max_gap.max(gap);
            }
        }
    }
    // The pin must not be vacuous: with boundary eps values the squared
    // predicate really does exclude points the sqrt predicate reports.
    assert!(
        disagreements > 0,
        "seeded sweep found no convention disagreements — the harness is \
         not exercising the boundary it claims to pin"
    );
    assert!(max_gap <= 1);
}

#[test]
fn one_dimensional_predicates_never_diverge() {
    // In 1-d the reported distance of a point is |x - q| exactly (one
    // subtraction), and round-to-nearest square root is the exact inverse
    // of a correctly rounded square: fl(√fl(d·d)) = d. So a boundary eps
    // round-trips and the two conventions must agree on every point.
    let mut rng = db_rng::Rng::seed_from_u64(0xdead_beef_cafe_f00d);
    for _ in 0..iters() {
        let n = rng.gen_range_inclusive(20..=200);
        let ds = random_dataset(&mut rng, n, 1);
        let metric = |a: usize, b: usize| euclidean(ds.point(a), ds.point(b));
        let tree = VpTree::build(ds.len(), &metric);
        let scan = LinearScan::build(&ds);
        let q = ds.point(rng.gen_range(0..ds.len())).to_vec();
        for nb in exact_knn(&ds, &q, 8) {
            let diff = membership_diff(&ds, &tree, &scan, &q, nb.dist);
            assert!(
                diff.is_empty(),
                "1-d conventions diverged at eps={} on ids {:?}",
                nb.dist,
                diff
            );
        }
    }
}
